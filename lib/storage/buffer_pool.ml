module Obs = Decibel_obs.Obs

type key = int * int

type entry = { data : bytes; mutable referenced : bool }

type stats = { hits : int; misses : int; evictions : int; write_backs : int }

type t = {
  page_size : int;
  capacity : int;
  table : (key, entry) Hashtbl.t;
  mutable ring : key array; (* clock ring; (-1,-1) marks a free slot *)
  mutable hand : int;
  mutable resident : int;
  mutable next_file : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable write_backs : int;
}

(* Process-wide registry mirrors of the per-pool statistics: every pool
   feeds the same named counters (metric naming: layer.operation.unit),
   so benchmark reports see I/O totals without holding pool handles. *)
let c_hits = Obs.counter "buffer_pool.hits"
let c_misses = Obs.counter "buffer_pool.misses"
let c_evictions = Obs.counter "buffer_pool.evictions"
let c_reads = Obs.counter "buffer_pool.reads"
let c_writes = Obs.counter "buffer_pool.writes"
let c_write_backs = Obs.counter "buffer_pool.write_backs"

let no_key = (-1, -1)

let create ?(page_size = 65536) ?(capacity_pages = 1024) () =
  if page_size <= 0 || capacity_pages <= 0 then
    invalid_arg "Buffer_pool.create: sizes must be positive";
  {
    page_size;
    capacity = capacity_pages;
    table = Hashtbl.create (capacity_pages * 2);
    ring = Array.make capacity_pages no_key;
    hand = 0;
    resident = 0;
    next_file = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    write_backs = 0;
  }

let page_size t = t.page_size
let capacity_pages t = t.capacity
let resident_pages t = t.resident

let next_file_id t =
  let id = t.next_file in
  t.next_file <- id + 1;
  id

let find t ~file ~page =
  Obs.incr c_reads;
  match Hashtbl.find_opt t.table (file, page) with
  | Some e ->
      e.referenced <- true;
      t.hits <- t.hits + 1;
      Obs.incr c_hits;
      Some e.data
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr c_misses;
      None

(* Advance the clock hand until a victim with referenced=false is found,
   clearing reference bits along the way; bounded by 2 * capacity. *)
let evict_one t =
  let rec loop steps =
    if steps > 2 * t.capacity then ()
    else begin
      let k = t.ring.(t.hand) in
      if k = no_key then begin
        t.hand <- (t.hand + 1) mod t.capacity;
        loop (steps + 1)
      end
      else
        match Hashtbl.find_opt t.table k with
        | None ->
            t.ring.(t.hand) <- no_key;
            t.hand <- (t.hand + 1) mod t.capacity
        | Some e ->
            if e.referenced then begin
              e.referenced <- false;
              t.hand <- (t.hand + 1) mod t.capacity;
              loop (steps + 1)
            end
            else begin
              Hashtbl.remove t.table k;
              t.ring.(t.hand) <- no_key;
              t.resident <- t.resident - 1;
              t.evictions <- t.evictions + 1;
              Obs.incr c_evictions;
              t.hand <- (t.hand + 1) mod t.capacity
            end
    end
  in
  loop 0

let add t ~file ~page data =
  let k = (file, page) in
  Obs.incr c_writes;
  (match Hashtbl.find_opt t.table k with
  | Some e ->
      (* refresh in place (a partial page grew) *)
      Hashtbl.replace t.table k { data; referenced = e.referenced }
  | None -> ());
  if not (Hashtbl.mem t.table k) then begin
    if t.resident >= t.capacity then evict_one t;
    if t.resident < t.capacity then begin
      Hashtbl.replace t.table k { data; referenced = true };
      (* place in a free ring slot starting from the hand *)
      let rec place i steps =
        if steps >= t.capacity then ()
        else if t.ring.(i) = no_key then t.ring.(i) <- k
        else place ((i + 1) mod t.capacity) (steps + 1)
      in
      place t.hand 0;
      t.resident <- t.resident + 1
    end
  end

let note_write_back t =
  t.write_backs <- t.write_backs + 1;
  Obs.incr c_write_backs

let invalidate_page t ~file ~page =
  let k = (file, page) in
  if Hashtbl.mem t.table k then begin
    Hashtbl.remove t.table k;
    t.resident <- t.resident - 1;
    Array.iteri (fun i k' -> if k' = k then t.ring.(i) <- no_key) t.ring
  end

let invalidate_from t ~file ~page =
  let keys =
    Hashtbl.fold
      (fun ((f, p) as k) _ acc ->
        if f = file && p >= page then k :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) keys;
  Array.iteri
    (fun i ((f, p) as k) ->
      if k <> no_key && f = file && p >= page then t.ring.(i) <- no_key)
    t.ring;
  t.resident <- Hashtbl.length t.table

let invalidate_file t file =
  let keys =
    Hashtbl.fold
      (fun ((f, _) as k) _ acc -> if f = file then k :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) keys;
  Array.iteri
    (fun i ((f, _) as k) -> if k <> no_key && f = file then t.ring.(i) <- no_key)
    t.ring;
  t.resident <- Hashtbl.length t.table

let drop_all t =
  Hashtbl.reset t.table;
  Array.fill t.ring 0 (Array.length t.ring) no_key;
  t.resident <- 0;
  t.hand <- 0

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    write_backs = t.write_backs;
  }

(* Resets this pool's instance statistics only: the registry counters
   are process-wide and monotonic (use Obs.reset to clear those). *)
let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.write_backs <- 0
