(** Row-addressed segment storage: format v1 (row-per-record heap) and
    v2 (PAX column-group blocks with per-column compression).

    Engines address records by dense row index.  In v2 mode, appended
    rows accumulate in an in-memory open block and are sealed into one
    heap record of up to {!block_rows} rows: per-column byte ranges
    encoded as constant / delta+zigzag-varint ints and raw /
    dictionary strings, with an RLE tombstone bitmap, optionally LZ77
    compressed as a unit.  Scans decode a block at a time into
    per-domain scratch arrays, test selection bitmaps {e before}
    reading or decoding a block, evaluate column predicates on the
    decoded batch (on dictionary codes for string equality), and
    materialize [Tuple.t] only for emitted rows.

    v1 mode reproduces the pre-columnar layout byte for byte (payload
    encoding is engine-supplied), so old repositories open unchanged
    and {!migrate_to_v2} can rewrite them row-order-preserving. *)

val block_rows : int
(** Maximum rows per sealed v2 block (1024). *)

type row_value =
  | Live of Tuple.t
  | Tombstone of Value.t  (** deletion marker, keyed by primary key *)

type v1_codec = {
  v1_encode : row_value -> string;
  v1_decode : string -> row_value;
}
(** Engine-owned payload codec for v1 row records. *)

type t

(** {1 Construction} *)

val create_v1 :
  pool:Buffer_pool.t ->
  schema:Schema.t ->
  compress:bool ->
  codec:v1_codec ->
  path:string ->
  t

val create_v2 :
  pool:Buffer_pool.t -> schema:Schema.t -> compress:bool -> path:string -> t

val empty_over :
  pool:Buffer_pool.t -> schema:Schema.t -> compress:bool -> path:string -> t
(** Empty v2 segment handle over [path] {e without} truncating the
    file: old bytes stay on disk (crash safety for maintenance slot
    swaps) and are reclaimed when the slot is next created or
    reopened, since the manifest records size 0. *)

val of_v1 :
  pool:Buffer_pool.t ->
  schema:Schema.t ->
  compress:bool ->
  codec:v1_codec ->
  file:Heap_file.t ->
  offsets:int list ->
  t
(** Wrap an already-opened (and truncated) v1 heap; [offsets] is each
    row's heap byte offset, ascending. *)

val open_v2 :
  pool:Buffer_pool.t ->
  schema:Schema.t ->
  compress:bool ->
  path:string ->
  string ->
  int ref ->
  t
(** Reopen from metadata written by {!save_meta}; truncates the heap
    to the persisted size (crash recovery). *)

(** {1 Introspection} *)

val format_version : t -> int
(** 1 or 2. *)

val schema : t -> Schema.t
val path : t -> string

val pool : t -> Buffer_pool.t
(** The buffer pool this segment reads through — lets engines build
    sibling segments (migration, compaction) without threading the pool
    separately. *)

val rows : t -> int
val byte_size : t -> int
val page_count : t -> int

val bytes_upto : t -> int -> int
(** Approximate on-disk bytes holding rows [0, row) — the charge basis
    for governed scans bounded by a row locator. *)

(** {1 Mutation} *)

val append : t -> row_value -> int
(** Appends and returns the new row's index. *)

val flush : t -> unit
(** Seals the open block (v2) and flushes the heap. *)

(** {1 Access} *)

val get : t -> int -> row_value
(** Point lookup; v2 decodes through a per-domain one-block cache. *)

val get_tuple : t -> int -> Tuple.t
(** [get], raising [Binio.Corrupt] on a tombstone row. *)

val iter : ?from:int -> ?upto:int -> t -> (int -> row_value -> unit) -> unit
(** Every row (live and tombstone) of [\[from, upto)], ascending. *)

val iter_rev :
  ?from:int -> ?upto:int -> t -> (int -> row_value -> unit) -> unit
(** Every row of [\[from, upto)], descending (newest first). *)

val scan :
  ?sel:Decibel_util.Bitvec.t ->
  ?preds:Col_pred.t list ->
  ?from:int ->
  ?upto:int ->
  t ->
  (int -> Tuple.t -> unit) ->
  unit
(** Live rows passing the selection bitmap and predicates, ascending.
    v2 skips blocks whose row range has no selected bit without
    reading them, and evaluates [preds] on decoded batches before any
    tuple is built. *)

val block_ranges : t -> (int * int) array
(** Row ranges at block granularity covering [\[0, rows)], for fanning
    a scan across domains: parallel workers over distinct ranges touch
    disjoint blocks. *)

(** {1 v1 locator conversion} *)

val v1_offset_of_row : t -> int -> int
val v1_row_of_offset : t -> int -> int
val v1_offsets : t -> int Decibel_util.Vec.t
(** v1-mode only: byte-offset/row translation for engine manifests
    that address records by byte. *)

(** {1 Manifest metadata} *)

val save_meta : Buffer.t -> t -> unit
(** v2-mode only: flushes, then appends heap size + block index +
    per-column stats (read back by {!open_v2}). *)

val manifest_magic_v2 : int

val write_manifest_header : Buffer.t -> unit
(** Appends the v2 magic + format version bytes. *)

val manifest_version : string -> int ref -> int
(** 1 (cursor unmoved) or the version from a v2 header (cursor past
    it).  v1 manifests cannot begin with the v2 magic byte. *)

(** {1 Reporting} *)

type col_report = {
  cr_name : string;
  cr_encoding : string;
  cr_raw_bytes : int;
  cr_enc_bytes : int;
}

val column_report : t -> col_report array
(** Per-column dominant encoding and raw-vs-encoded byte volume across
    sealed blocks (empty for v1). *)

val merge_column_reports : col_report array list -> col_report array
(** Aggregate several same-schema segments' reports: byte volumes sum;
    each column's dominant encoding comes from the segment that
    contributed the most raw bytes.  Empty (v1) reports are ignored. *)

(** {1 Integrity and lifecycle} *)

val verify : t -> (int * string) list
(** Record checksums plus (v2) block decode and row-count checks. *)

val migrate_to_v2 : t -> t
(** Rewrite a v1 segment as v2 in place, preserving row order 1:1 so
    row-addressed locators stay valid.  The v2 copy is built beside
    the original and renamed over it only once complete.  Identity on
    v2 segments. *)

val close : t -> unit
val abandon : t -> unit
(** Crash simulation: drop buffered state without flushing. *)

val remove : t -> unit
