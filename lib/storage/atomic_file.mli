(** Checksummed atomic replacement for small metadata files
    (manifests).

    Files carry their payload followed by an 8-byte trailer: the magic
    ["DBC1"] and the CRC-32 of the payload.  The trailer is at the end
    so code that sniffs a manifest's leading bytes keeps working.
    {!write} goes through the fault-injection seam: the temp-file
    write is the ["manifest.write_tmp"] failpoint (tearable), the
    rename the ["manifest.rename"] control site. *)

val write : string -> string -> unit
(** [write path payload] writes [payload ^ trailer] to [path ^ ".tmp"]
    and renames it over [path].  A crash at either failpoint leaves
    the previous file contents intact. *)

val read : string -> string
(** Payload of a checksummed file.  Raises [Decibel_util.Binio.Corrupt]
    on a missing/invalid trailer or checksum mismatch, [Sys_error] if
    unreadable. *)

val verify : string -> string option
(** [None] if the file reads back clean, [Some reason] otherwise
    (used by fsck). *)

val frame : string -> string
(** The on-disk bytes for a payload (exposed for tests/fsck). *)

val check : string -> string
(** Validate framed bytes and return the payload; raises
    [Decibel_util.Binio.Corrupt] like {!read}. *)
