(* Checksummed atomic small-file replacement (manifests, ACLs).

   Layout: payload bytes, then an 8-byte trailer of the 4-byte magic
   "DBC1" and the little-endian CRC-32 of the payload.  The trailer
   sits at the *end* so readers that sniff a manifest's leading bytes
   (scheme detection) keep working on checksummed files.

   Replacement is write-to-temp + rename, the same protocol as
   [Binio.write_file], but threaded through the fault-injection seam:
   the temp write is a [Failpoint.guard_write] (so torture runs can
   tear a manifest mid-write and prove the rename never exposes it)
   and the rename is a control site.  A crash before the rename leaves
   the previous manifest intact plus a stale [.tmp] that fsck sweeps. *)

open Decibel_util
module Failpoint = Decibel_fault.Failpoint
module Retry = Decibel_fault.Retry

let magic = "DBC1"
let trailer_len = 8

let frame payload =
  let buf = Buffer.create (String.length payload + trailer_len) in
  Buffer.add_string buf payload;
  Buffer.add_string buf magic;
  Binio.write_u32 buf (Crc32.string payload);
  Buffer.contents buf

let write path payload =
  let tmp = path ^ ".tmp" in
  Retry.with_retries ~site:"manifest.write_tmp" (fun () ->
      Failpoint.guard_write "manifest.write_tmp" (frame payload)
        (fun data ->
          let oc = open_out_bin tmp in
          output_string oc data;
          close_out oc));
  Failpoint.hit "manifest.rename";
  Sys.rename tmp path

let check s =
  let n = String.length s in
  if n < trailer_len then
    raise (Binio.Corrupt "Atomic_file: missing checksum trailer");
  let payload_len = n - trailer_len in
  if String.sub s payload_len 4 <> magic then
    raise (Binio.Corrupt "Atomic_file: bad trailer magic");
  let pos = ref (payload_len + 4) in
  let stored = Binio.read_u32 s pos in
  if Crc32.sub s 0 payload_len <> stored then
    raise (Binio.Corrupt "Atomic_file: checksum mismatch");
  String.sub s 0 payload_len

let read path = check (Binio.read_file path)

let verify path =
  match check (Binio.read_file path) with
  | _ -> None
  | exception Binio.Corrupt msg -> Some msg
  | exception Sys_error msg -> Some msg
