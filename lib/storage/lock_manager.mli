(** Branch-granularity two-phase locking.

    Concurrent transactions by multiple users on the same version are
    isolated through two-phase locking, and concurrent commits to a
    branch are prevented the same way (paper §2.2.3).  Resources are
    named by strings (branch names here); sessions acquire shared or
    exclusive locks and release everything at transaction end.

    Deadlocks are broken by a wait timeout: an acquisition that cannot
    proceed within the timeout raises {!Deadlock}, and the caller is
    expected to abort and release. *)

type t

type mode = Shared | Exclusive

exception Deadlock of string
(** Argument is the contested resource. *)

val create : ?timeout_s:float -> unit -> t
(** [timeout_s] bounds lock waits (default 5 s). *)

val acquire :
  t -> ?deadline:float -> owner:int -> resource:string -> mode -> unit
(** Blocks until granted.  Re-acquisition by the same owner is a no-op;
    a shared holder requesting exclusive upgrades when it is the sole
    holder.

    [deadline] is an absolute [Unix.gettimeofday] instant; a wait that
    passes it is abandoned with
    {!Decibel_governor.Governor.Deadline_exceeded} (and a warn-level
    event), as is a wait whose ambient governor context ({!
    Decibel_governor.Governor.Ctx.current}) expires or is cancelled.
    The manager's own [timeout_s] still raises {!Deadlock}. *)

val release_all : t -> owner:int -> unit
(** Drop every lock the owner holds (commit or abort). *)

val holders : t -> resource:string -> (int * mode) list
(** Current lock table entry, for tests and introspection. *)
