(* Structured column predicates, pushable below tuple materialization.

   The query layer's [column op literal] conjuncts are the only
   predicate shape the benchmark uses (paper §4.3); expressing them as
   data instead of closures lets the columnar scan path of segment
   format v2 evaluate them against decoded batches — or against
   dictionary codes without decoding at all — before any Tuple.t is
   built. *)

type op = Eq | Ne | Lt | Le | Gt | Ge

let op_name = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Truth of [op] given a three-way comparison result. *)
let matches op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

type t = { cp_col : int; cp_op : op; cp_value : Value.t }

let make schema ~column op value =
  { cp_col = Schema.column_index schema column; cp_op = op; cp_value = value }

let of_index col op value = { cp_col = col; cp_op = op; cp_value = value }

let eval_one p (tuple : Tuple.t) =
  matches p.cp_op (Value.compare tuple.(p.cp_col) p.cp_value)

let eval_tuple ps tuple = List.for_all (fun p -> eval_one p tuple) ps

let pp fmt p =
  Format.fprintf fmt "c%d %s %a" p.cp_col (op_name p.cp_op) Value.pp p.cp_value
