(** Minimal HTTP/1.1 server over Unix sockets — stdlib only, one
    request per connection, single-threaded accept loop.  Just enough
    to serve a metrics pull endpoint; not a general web server (no
    keep-alive, no request bodies, no TLS).

    The single-threaded loop matches the engines it fronts: a scrape
    briefly interleaves with nothing, so responses are consistent
    snapshots. *)

type response = { status : int; content_type : string; body : string }

type handler =
  meth:string -> path:string -> query:(string * string) list -> response
(** [path] has the query string stripped; [query] carries the parsed
    [?k=v&...] pairs (no percent-decoding).  Exceptions escaping the
    handler become a 500 JSON error response. *)

type server

val listen : ?host:string -> ?backlog:int -> port:int -> unit -> server
(** Bind and listen on [host] (default ["127.0.0.1"]).  [port = 0]
    binds an ephemeral port — read it back with {!port}. *)

val port : server -> int

val handle_one : server -> handler -> unit
(** Accept one connection, serve one request, close it.  Blocks until
    a client connects. *)

val serve_forever : server -> handler -> unit
(** {!handle_one} in a loop; never returns normally. *)

val close : server -> unit

val text : ?status:int -> string -> response
(** A [text/plain] response (default status 200). *)

val json : ?status:int -> string -> response
(** An [application/json] response (default status 200). *)

val error : status:int -> string -> response
(** A JSON error body [{"error": msg, "status": n}]; like every
    response, written with [Content-Type] and [Content-Length]. *)

val not_found : path:string -> response
(** [error ~status:404] naming the unmatched path. *)

val query_int : ?default:int -> (string * string) list -> string -> int option
(** Parse an integer query parameter; a present-but-malformed value
    falls back to [default]. *)
