(* Storage advisor: joins the per-branch workload table with the
   storage report through a recreation/storage cost model and emits
   ranked, explained recommendations.  See advisor.mli. *)

type kind = Materialize | Compact | Gc | Rechunk

let kind_name = function
  | Materialize -> "materialize"
  | Compact -> "compact"
  | Gc -> "gc"
  | Rechunk -> "rechunk"

type recommendation = {
  rc_kind : kind;
  rc_target : string;
  rc_score : float;
  rc_benefit : float;
  rc_unit : string;
  rc_reason : string;
}

type thresholds = {
  th_chain_min : int;
  th_hot_read_rate : float;
  th_rechunk_chain : int;
  th_dead_ratio : float;
  th_min_dead_tuples : int;
  th_frag_min : float;
  th_min_seg_bytes : int;
}

let default =
  {
    th_chain_min = 4;
    th_hot_read_rate = 0.05;
    th_rechunk_chain = 16;
    th_dead_ratio = 0.3;
    th_min_dead_tuples = 64;
    th_frag_min = 0.3;
    th_min_seg_bytes = 4096;
  }

let dead_ratio (b : Report.branch) =
  let total = b.Report.br_live_tuples + b.Report.br_dead_tuples in
  if total = 0 then 0.0
  else float_of_int b.Report.br_dead_tuples /. float_of_int total

(* The workload entry for a branch, if any; [advise]'s caller filters
   the workload to the report's table, so the join is by branch name. *)
let stats_for workload name =
  List.find_opt (fun (s : Workload.stats) -> s.Workload.w_branch = name) workload

let advise ?(thresholds = default) ~report ~workload () =
  let th = thresholds in
  let recs = ref [] in
  let push r = recs := r :: !recs in
  List.iter
    (fun (b : Report.branch) ->
      if b.Report.br_active then begin
        let name = b.Report.br_name in
        let chain = b.Report.br_delta_chain in
        let stats = stats_for workload name in
        let read_rate =
          match stats with Some s -> s.Workload.w_read_rate | None -> 0.0
        in
        let frags_per_read =
          match stats with
          | Some s when s.Workload.w_reads > 0 -> Workload.fragments_per_read s
          | _ -> float_of_int chain
        in
        (* Recreation vs storage (the "Principles of Dataset
           Versioning" tradeoff): a hot branch on a long delta chain
           pays [fragments/read * reads/s] in replay continuously;
           materializing trades that for a one-time storage copy.  A
           cold branch keeps its chain — the replay cost is never
           paid, so the deltas' storage saving wins. *)
        if chain >= th.th_chain_min && read_rate >= th.th_hot_read_rate then
          push
            {
              rc_kind = Materialize;
              rc_target = name;
              rc_score = read_rate *. frags_per_read;
              rc_benefit = read_rate *. frags_per_read;
              rc_unit = "fragments/s";
              rc_reason =
                Printf.sprintf
                  "hot branch on a %d-deep delta chain: %.4f reads/s x %.1f \
                   fragments replayed per scan; materializing removes the \
                   recurring replay cost"
                  chain read_rate frags_per_read;
            }
        else if chain >= th.th_rechunk_chain then
          (* too long to leave unbounded even when cold: rechunking the
             chain (merging adjacent fragments) caps a future checkout's
             replay cost without paying full materialization storage *)
          push
            {
              rc_kind = Rechunk;
              rc_target = name;
              rc_score = float_of_int (chain - th.th_chain_min) /. 100.0;
              rc_benefit = float_of_int (chain - th.th_chain_min);
              rc_unit = "fragments";
              rc_reason =
                Printf.sprintf
                  "cold branch (%.4f reads/s) but the delta chain is %d deep; \
                   rechunking bounds future replay without materializing"
                  read_rate chain;
            };
        let dr = dead_ratio b in
        if dr >= th.th_dead_ratio && b.Report.br_dead_tuples >= th.th_min_dead_tuples
        then
          push
            {
              rc_kind = Gc;
              rc_target = name;
              rc_score = dr;
              rc_benefit = float_of_int b.Report.br_dead_tuples;
              rc_unit = "tuples";
              rc_reason =
                Printf.sprintf
                  "%.0f%% of the branch's tuples are dead (%d of %d); \
                   reclaiming them shrinks storage and scan page counts"
                  (100.0 *. dr) b.Report.br_dead_tuples
                  (b.Report.br_live_tuples + b.Report.br_dead_tuples);
            }
      end)
    report.Report.r_branches;
  List.iter
    (fun (s : Report.segment) ->
      if
        s.Report.sg_fragmentation >= th.th_frag_min
        && s.Report.sg_bytes >= th.th_min_seg_bytes
      then
        let reclaim =
          s.Report.sg_fragmentation *. float_of_int s.Report.sg_bytes
        in
        push
          {
            rc_kind = Compact;
            rc_target = s.Report.sg_file;
            rc_score = reclaim /. 1_048_576.0;
            rc_benefit = reclaim;
            rc_unit = "bytes";
            rc_reason =
              Printf.sprintf
                "segment %d is %.0f%% dead space; compaction reclaims ~%.0f \
                 of %d bytes"
                s.Report.sg_id
                (100.0 *. s.Report.sg_fragmentation)
                reclaim s.Report.sg_bytes;
          })
    report.Report.r_segments;
  List.stable_sort
    (fun a b ->
      match compare b.rc_score a.rc_score with
      | 0 -> compare (a.rc_target, kind_name a.rc_kind)
                 (b.rc_target, kind_name b.rc_kind)
      | c -> c)
    !recs

(* ------------------------------------------------------------------ *)
(* Rendering *)

let esc = Obs.json_escape
let fl = Obs.json_float

let recommendation_json r =
  Printf.sprintf
    "{\"kind\":\"%s\",\"target\":\"%s\",\"score\":%s,\"benefit\":%s,\"unit\":\"%s\",\"reason\":\"%s\"}"
    (kind_name r.rc_kind) (esc r.rc_target) (fl r.rc_score) (fl r.rc_benefit)
    (esc r.rc_unit) (esc r.rc_reason)

let to_json recs =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (recommendation_json r))
    recs;
  Buffer.add_char buf ']';
  Buffer.contents buf

let to_text recs =
  if recs = [] then "no recommendations: storage matches the workload\n"
  else begin
    let buf = Buffer.create 1024 in
    let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    pf "recommendations (%d, best first)\n" (List.length recs);
    List.iteri
      (fun i r ->
        pf "  %d. %-11s %-24s benefit %.2f %s\n" (i + 1) (kind_name r.rc_kind)
          r.rc_target r.rc_benefit r.rc_unit;
        pf "     %s\n" r.rc_reason)
      recs;
    Buffer.contents buf
  end

let prometheus_samples recs =
  let count k =
    List.length (List.filter (fun r -> r.rc_kind = k) recs)
  in
  List.map
    (fun k ->
      ( "advisor_recommendations",
        [ ("kind", kind_name k) ],
        float_of_int (count k) ))
    [ Materialize; Compact; Gc; Rechunk ]
