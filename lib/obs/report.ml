(* Storage introspection report: plain data assembled by the engines,
   rendered here.  See report.mli. *)

type branch = {
  br_name : string;
  br_id : int;
  br_head : int;
  br_active : bool;
  br_live_tuples : int;
  br_dead_tuples : int;
  br_bitmap_bits : int;
  br_density : float;
  br_segments : int;
  br_delta_chain : int;
  br_delta_bytes : int;
}

type segment = {
  sg_id : int;
  sg_file : string;
  sg_bytes : int;
  sg_pages : int;
  sg_records : int;
  sg_live_records : int;
  sg_fragmentation : float;
}

type history = {
  h_files : int;
  h_bytes : int;
  h_commits : int;
  h_max_chain : int;
  h_mean_chain : float;
}

type graph = {
  g_versions : int;
  g_branches : int;
  g_active_branches : int;
  g_depth : int;
  g_max_fanout : int;
}

type pool = {
  p_page_size : int;
  p_capacity_pages : int;
  p_resident_pages : int;
  p_hits : int;
  p_misses : int;
  p_evictions : int;
  p_write_backs : int;
}

type column = {
  co_name : string;
  co_encoding : string;
  co_raw_bytes : int;
  co_enc_bytes : int;
}

type engine_part = {
  e_format : int;
  e_branches : branch list;
  e_segments : segment list;
  e_columns : column list;
  e_history : history;
}

type t = {
  r_scheme : string;
  r_format : int;
  r_dataset_bytes : int;
  r_commit_meta_bytes : int;
  r_branches : branch list;
  r_segments : segment list;
  r_columns : column list;
  r_history : history;
  r_graph : graph;
  r_pool : pool;
  r_health : string;
  r_quarantined : (string * string) list;
}

let empty_history =
  { h_files = 0; h_bytes = 0; h_commits = 0; h_max_chain = 0; h_mean_chain = 0.0 }

let density ~live ~bits = if bits = 0 then 0.0 else float_of_int live /. float_of_int bits

let fragmentation ~live ~records =
  if records = 0 then 0.0
  else 1.0 -. (float_of_int live /. float_of_int records)

let compression_ratio c =
  if c.co_enc_bytes = 0 then 0.0
  else float_of_int c.co_raw_bytes /. float_of_int c.co_enc_bytes

let chain_stats chains =
  let n = List.length chains in
  let mx = List.fold_left max 0 chains in
  let mean =
    if n = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 chains) /. float_of_int n
  in
  (mx, mean)

(* ------------------------------------------------------------------ *)
(* JSON *)

let esc = Obs.json_escape
let fl = Obs.json_float

let branch_json b =
  Printf.sprintf
    "{\"name\":\"%s\",\"id\":%d,\"head\":%d,\"active\":%b,\"live_tuples\":%d,\"dead_tuples\":%d,\"bitmap_bits\":%d,\"density\":%s,\"segments\":%d,\"delta_chain\":%d,\"delta_bytes\":%d}"
    (esc b.br_name) b.br_id b.br_head b.br_active b.br_live_tuples
    b.br_dead_tuples b.br_bitmap_bits (fl b.br_density) b.br_segments
    b.br_delta_chain b.br_delta_bytes

let segment_json s =
  Printf.sprintf
    "{\"id\":%d,\"file\":\"%s\",\"bytes\":%d,\"pages\":%d,\"records\":%d,\"live_records\":%d,\"fragmentation\":%s}"
    s.sg_id (esc s.sg_file) s.sg_bytes s.sg_pages s.sg_records
    s.sg_live_records (fl s.sg_fragmentation)

let column_json c =
  Printf.sprintf
    "{\"name\":\"%s\",\"encoding\":\"%s\",\"raw_bytes\":%d,\"enc_bytes\":%d,\"ratio\":%s}"
    (esc c.co_name) (esc c.co_encoding) c.co_raw_bytes c.co_enc_bytes
    (fl (compression_ratio c))

let to_json r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"scheme\":\"%s\",\"format\":%d,\"dataset_bytes\":%d,\"commit_meta_bytes\":%d"
       (esc r.r_scheme) r.r_format r.r_dataset_bytes r.r_commit_meta_bytes);
  Buffer.add_string buf ",\"branches\":[";
  List.iteri
    (fun i b ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (branch_json b))
    r.r_branches;
  Buffer.add_string buf "],\"segments\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (segment_json s))
    r.r_segments;
  Buffer.add_string buf "],\"columns\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (column_json c))
    r.r_columns;
  Buffer.add_string buf "]";
  let h = r.r_history in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"history\":{\"files\":%d,\"bytes\":%d,\"commits\":%d,\"max_chain\":%d,\"mean_chain\":%s}"
       h.h_files h.h_bytes h.h_commits h.h_max_chain (fl h.h_mean_chain));
  let g = r.r_graph in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"graph\":{\"versions\":%d,\"branches\":%d,\"active_branches\":%d,\"depth\":%d,\"max_fanout\":%d}"
       g.g_versions g.g_branches g.g_active_branches g.g_depth g.g_max_fanout);
  let p = r.r_pool in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"pool\":{\"page_size\":%d,\"capacity_pages\":%d,\"resident_pages\":%d,\"hits\":%d,\"misses\":%d,\"evictions\":%d,\"write_backs\":%d}"
       p.p_page_size p.p_capacity_pages p.p_resident_pages p.p_hits p.p_misses
       p.p_evictions p.p_write_backs);
  Buffer.add_string buf
    (Printf.sprintf ",\"health\":\"%s\",\"quarantined\":[" (esc r.r_health));
  List.iteri
    (fun i (b, reason) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"branch\":\"%s\",\"reason\":\"%s\"}" (esc b)
           (esc reason)))
    r.r_quarantined;
  Buffer.add_string buf "]";
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* text rendering (ANALYZE-style) *)

let to_text r =
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "scheme            %s\n" r.r_scheme;
  pf "segment format    v%d\n" r.r_format;
  pf "health            %s\n" r.r_health;
  List.iter
    (fun (b, reason) -> pf "  quarantined     %s: %s\n" b reason)
    r.r_quarantined;
  pf "dataset bytes     %d\n" r.r_dataset_bytes;
  pf "commit meta bytes %d\n" r.r_commit_meta_bytes;
  let g = r.r_graph in
  pf "version graph     %d versions, %d branches (%d active), depth %d, max fan-out %d\n"
    g.g_versions g.g_branches g.g_active_branches g.g_depth g.g_max_fanout;
  let p = r.r_pool in
  pf "buffer pool       %d/%d pages resident (page size %d), %d hits / %d misses, %d evictions, %d write-backs\n"
    p.p_resident_pages p.p_capacity_pages p.p_page_size p.p_hits p.p_misses
    p.p_evictions p.p_write_backs;
  let h = r.r_history in
  pf "commit history    %d files, %d bytes, %d commits, chain max %d / mean %.2f\n"
    h.h_files h.h_bytes h.h_commits h.h_max_chain h.h_mean_chain;
  pf "branches (%d)\n" (List.length r.r_branches);
  pf "  %-16s %8s %8s %8s %8s %5s %6s %10s\n" "name" "live" "dead" "bits"
    "density" "segs" "chain" "delta-B";
  List.iter
    (fun b ->
      pf "  %-16s %8d %8d %8d %8.3f %5d %6d %10d%s\n" b.br_name
        b.br_live_tuples b.br_dead_tuples b.br_bitmap_bits b.br_density
        b.br_segments b.br_delta_chain b.br_delta_bytes
        (if b.br_active then "" else "  (retired)"))
    r.r_branches;
  pf "segments (%d)\n" (List.length r.r_segments);
  pf "  %-4s %-24s %10s %6s %8s %8s %6s\n" "id" "file" "bytes" "pages"
    "records" "live" "frag";
  List.iter
    (fun s ->
      pf "  %-4d %-24s %10d %6d %8d %8d %6.3f\n" s.sg_id s.sg_file s.sg_bytes
        s.sg_pages s.sg_records s.sg_live_records s.sg_fragmentation)
    r.r_segments;
  if r.r_columns <> [] then begin
    pf "columns (%d)\n" (List.length r.r_columns);
    pf "  %-16s %-12s %10s %10s %7s\n" "name" "encoding" "raw-B" "enc-B"
      "ratio";
    List.iter
      (fun c ->
        pf "  %-16s %-12s %10d %10d %7.2f\n" c.co_name c.co_encoding
          c.co_raw_bytes c.co_enc_bytes (compression_ratio c))
      r.r_columns
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus samples *)

let prometheus_samples r =
  let base =
    [
      ("storage_segment_format", [], float_of_int r.r_format);
      ("storage_dataset_bytes", [], float_of_int r.r_dataset_bytes);
      ("storage_commit_meta_bytes", [], float_of_int r.r_commit_meta_bytes);
      ("storage_graph_versions", [], float_of_int r.r_graph.g_versions);
      ("storage_graph_branches", [], float_of_int r.r_graph.g_branches);
      ( "storage_graph_active_branches",
        [],
        float_of_int r.r_graph.g_active_branches );
      ("storage_graph_depth", [], float_of_int r.r_graph.g_depth);
      ("storage_graph_max_fanout", [], float_of_int r.r_graph.g_max_fanout);
      ("storage_pool_capacity_pages", [], float_of_int r.r_pool.p_capacity_pages);
      ("storage_pool_resident_pages", [], float_of_int r.r_pool.p_resident_pages);
      ("storage_history_files", [], float_of_int r.r_history.h_files);
      ("storage_history_bytes", [], float_of_int r.r_history.h_bytes);
      ("storage_history_commits", [], float_of_int r.r_history.h_commits);
      ("storage_history_max_chain", [], float_of_int r.r_history.h_max_chain);
      ("storage_segments", [], float_of_int (List.length r.r_segments));
      ( "storage_healthy",
        [],
        if r.r_health = "healthy" then 1.0 else 0.0 );
      ( "storage_quarantined_branches",
        [],
        float_of_int (List.length r.r_quarantined) );
    ]
  in
  let per_branch =
    List.concat_map
      (fun b ->
        let l = [ ("branch", b.br_name) ] in
        [
          ("storage_branch_live_tuples", l, float_of_int b.br_live_tuples);
          ("storage_branch_dead_tuples", l, float_of_int b.br_dead_tuples);
          ("storage_branch_bitmap_density", l, b.br_density);
          ("storage_branch_delta_chain", l, float_of_int b.br_delta_chain);
          ("storage_branch_delta_bytes", l, float_of_int b.br_delta_bytes);
        ])
      r.r_branches
  in
  let per_column =
    List.concat_map
      (fun c ->
        let l = [ ("column", c.co_name); ("encoding", c.co_encoding) ] in
        [
          ("storage_column_raw_bytes", l, float_of_int c.co_raw_bytes);
          ("storage_column_enc_bytes", l, float_of_int c.co_enc_bytes);
          ("storage_column_compression_ratio", l, compression_ratio c);
        ])
      r.r_columns
  in
  base @ per_branch @ per_column
