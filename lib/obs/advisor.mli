(** Storage advisor: the measured recreation/storage tradeoff.

    Joins the per-branch workload table ({!Workload}) with the storage
    report ({!Report}) through a simple cost model and emits ranked,
    explained recommendations:

    - [Materialize]: a {e hot} branch (read rate above threshold) on a
      long delta chain pays [fragments/read x reads/s] in replay
      continuously — materializing trades that recurring cost for a
      one-time storage copy.  A cold branch stays on deltas: storage
      wins when the replay cost is never paid.
    - [Rechunk]: a cold branch whose chain has grown past the rechunk
      threshold — merge adjacent fragments to bound a future checkout's
      replay without paying full materialization.
    - [Gc]: a branch whose dead-tuple ratio crossed its threshold —
      reclaim the dead space.
    - [Compact]: a segment whose fragmentation (dead-record share)
      crossed its threshold — rewrite it, reclaiming
      [fragmentation x bytes].

    The module is pure (report + workload in, recommendations out), so
    policies are testable on synthetic inputs; [Database.advise] feeds
    it live data. *)

type kind = Materialize | Compact | Gc | Rechunk

val kind_name : kind -> string
(** ["materialize"], ["compact"], ["gc"], ["rechunk"]. *)

type recommendation = {
  rc_kind : kind;
  rc_target : string;  (** branch name, or segment file for [Compact] *)
  rc_score : float;  (** ranking key, higher = more urgent *)
  rc_benefit : float;  (** estimated benefit in [rc_unit] *)
  rc_unit : string;  (** ["fragments/s"], ["fragments"], ["tuples"], ["bytes"] *)
  rc_reason : string;  (** one-sentence explanation with the numbers *)
}

type thresholds = {
  th_chain_min : int;  (** delta chain depth before materialize triggers *)
  th_hot_read_rate : float;  (** reads/s above which a branch is hot *)
  th_rechunk_chain : int;  (** chain depth where even cold branches rechunk *)
  th_dead_ratio : float;  (** branch dead/(live+dead) ratio for GC *)
  th_min_dead_tuples : int;  (** don't GC trivia *)
  th_frag_min : float;  (** segment fragmentation ratio for compaction *)
  th_min_seg_bytes : int;  (** don't compact trivia *)
}

val default : thresholds

val advise :
  ?thresholds:thresholds ->
  report:Report.t ->
  workload:Workload.stats list ->
  unit ->
  recommendation list
(** Ranked recommendations, best first.  [workload] should already be
    filtered to the report's table — the join is by branch name. *)

val recommendation_json : recommendation -> string
val to_json : recommendation list -> string
val to_text : recommendation list -> string

val prometheus_samples :
  recommendation list -> (string * (string * string) list * float) list
(** One [advisor_recommendations{kind=...}] gauge per kind. *)
