(* Process-wide metrics registry and tracing spans.  See obs.mli. *)

let on =
  ref
    (match Sys.getenv_opt "DECIBEL_OBS" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

let set_enabled b = on := b
let enabled () = !on

let t0 = Unix.gettimeofday ()
let now () = Unix.gettimeofday ()

(* Domain-safety: counters are atomic (hit from parallel scan
   workers); everything slower-moving — interning tables, gauges,
   histograms, the event ring, the span buffer — is guarded by one
   registry mutex.  [locked] sections never call other [locked]
   functions (the mutex is not reentrant). *)
let reg_m = Mutex.create ()

let locked f =
  Mutex.lock reg_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_m) f

(* ------------------------------------------------------------------ *)
(* counters *)

type counter = { c_name : string; c_value : int Atomic.t }

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.replace counters_tbl name c;
          c)

let incr c = if !on then Atomic.incr c.c_value
let add c n = if !on then ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value

let value_of name =
  match locked (fun () -> Hashtbl.find_opt counters_tbl name) with
  | Some c -> Atomic.get c.c_value
  | None -> 0

(* ------------------------------------------------------------------ *)
(* gauges *)

type gauge = { g_name : string; mutable g_value : float }

let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges_tbl name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_value = 0.0 } in
          Hashtbl.replace gauges_tbl name g;
          g)

let set_gauge g v = if !on then locked (fun () -> g.g_value <- v)
let gauge_value g = g.g_value

(* ------------------------------------------------------------------ *)
(* histograms *)

(* exponential latency buckets: 1 µs, 2 µs, ... ~32 s *)
let default_buckets = Array.init 26 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

type histogram = {
  h_name : string;
  h_buckets : float array; (* ascending upper bounds *)
  h_counts : int array; (* length = buckets + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 32

let histogram ?buckets name =
  locked (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h ->
          (match buckets with
          | Some b when b <> h.h_buckets ->
              invalid_arg
                (Printf.sprintf
                   "Obs.histogram: %S already interned with %d bucket(s), \
                    requested %d (bucket layouts must match)"
                   name
                   (Array.length h.h_buckets)
                   (Array.length b))
          | _ -> h)
      | None ->
          let buckets = Option.value buckets ~default:default_buckets in
          let h =
            {
              h_name = name;
              h_buckets = buckets;
              h_counts = Array.make (Array.length buckets + 1) 0;
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
            }
          in
          Hashtbl.replace histograms_tbl name h;
          h)

(* first bucket whose upper bound holds the value (linear scan: the
   bucket count is small and observations are per-operation, not
   per-tuple) *)
let bucket_index h v =
  let n = Array.length h.h_buckets in
  let rec go i = if i >= n || v <= h.h_buckets.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if !on then
    locked (fun () ->
        let i = bucket_index h v in
        h.h_counts.(i) <- h.h_counts.(i) + 1;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v)

let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let rank = max 1 (min h.h_count rank) in
    let nb = Array.length h.h_buckets in
    let acc = ref 0 and result = ref h.h_max in
    (try
       for i = 0 to nb do
         acc := !acc + h.h_counts.(i);
         if !acc >= rank then begin
           result := (if i < nb then h.h_buckets.(i) else h.h_max);
           raise Exit
         end
       done
     with Exit -> ());
    (* a bucket bound can overshoot the true extremes; clamp *)
    min h.h_max (max h.h_min !result)
  end

type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

let summarize h =
  if h.h_count = 0 then
    {
      hs_count = 0;
      hs_sum = 0.0;
      hs_min = 0.0;
      hs_max = 0.0;
      hs_p50 = 0.0;
      hs_p95 = 0.0;
      hs_p99 = 0.0;
    }
  else
    {
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = h.h_min;
      hs_max = h.h_max;
      hs_p50 = quantile h 0.50;
      hs_p95 = quantile h 0.95;
      hs_p99 = quantile h 0.99;
    }

(* raw accessors for exporters (Prometheus needs per-bucket counts,
   not just the quantile summary) *)
let hist_name h = h.h_name
let hist_buckets h = Array.copy h.h_buckets
let hist_bucket_counts h = Array.copy h.h_counts
let hist_count h = h.h_count
let hist_sum h = h.h_sum

let sorted_values tbl =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []))

let all_counters () = List.map snd (sorted_values counters_tbl)
let all_gauges () = List.map snd (sorted_values gauges_tbl)
let all_histograms () = List.map snd (sorted_values histograms_tbl)
let counter_name c = c.c_name
let gauge_name g = g.g_name

(* ------------------------------------------------------------------ *)
(* JSON helpers (shared by events, traces and snapshots) *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

(* ------------------------------------------------------------------ *)
(* structured event log *)

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type event = {
  ev_seq : int;
  ev_time : float; (* unix epoch seconds *)
  ev_level : level;
  ev_comp : string;
  ev_msg : string;
  ev_attrs : (string * string) list;
}

(* bounded ring: when full the oldest event is overwritten and
   "obs.events_dropped" counts the loss *)
let ev_capacity = ref 4096
let ev_ring : event option array ref = ref (Array.make !ev_capacity None)
let ev_next = ref 0 (* next write slot *)
let ev_count = ref 0 (* events currently held, <= capacity *)
let ev_seq = ref 0 (* monotonic emission count *)
let ev_min_level = ref Debug
let ev_sink : out_channel option ref = ref None
let c_events = counter "obs.events"
let c_events_dropped = counter "obs.events_dropped"

let set_event_capacity n =
  if n < 1 then invalid_arg "Obs.set_event_capacity: capacity must be >= 1";
  ev_capacity := n;
  ev_ring := Array.make n None;
  ev_next := 0;
  ev_count := 0

let set_min_event_level l = ev_min_level := l

let set_event_sink path =
  (match !ev_sink with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  ev_sink :=
    match path with
    | None -> None
    | Some p -> Some (open_out_gen [ Open_append; Open_creat ] 0o644 p)

let event_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"seq\":%d,\"time\":%.6f,\"level\":\"%s\",\"comp\":\"%s\",\"msg\":\"%s\""
       e.ev_seq e.ev_time (level_name e.ev_level) (json_escape e.ev_comp)
       (json_escape e.ev_msg));
  if e.ev_attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      e.ev_attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let event ?(attrs = []) ?(level = Info) ~comp msg =
  if !on && level_rank level >= level_rank !ev_min_level then begin
    locked (fun () ->
        let e =
          {
            ev_seq = !ev_seq;
            ev_time = now ();
            ev_level = level;
            ev_comp = comp;
            ev_msg = msg;
            ev_attrs = attrs;
          }
        in
        Stdlib.incr ev_seq;
        let cap = Array.length !ev_ring in
        if !ev_count = cap then incr c_events_dropped
        else Stdlib.incr ev_count;
        !ev_ring.(!ev_next) <- Some e;
        ev_next := (!ev_next + 1) mod cap;
        match !ev_sink with
        | Some oc ->
            output_string oc (event_json e);
            output_char oc '\n';
            flush oc
        | None -> ());
    incr c_events
  end

let events () =
  locked (fun () ->
      let cap = Array.length !ev_ring in
      let first = (!ev_next - !ev_count + cap) mod cap in
      List.init !ev_count (fun i ->
          match !ev_ring.((first + i) mod cap) with
          | Some e -> e
          | None -> assert false))

let events_emitted () = !ev_seq

let events_json () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_json e);
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* slow-operation log *)

let slow_tbl : (string, float) Hashtbl.t = Hashtbl.create 16

let slow_default =
  ref
    (match Sys.getenv_opt "DECIBEL_SLOW_MS" with
    | Some s -> ( try Some (float_of_string s /. 1e3) with Failure _ -> None)
    | None -> None)

let set_slow_threshold name secs = Hashtbl.replace slow_tbl name secs
let clear_slow_threshold name = Hashtbl.remove slow_tbl name
let set_slow_default secs = slow_default := secs

let slow_threshold name =
  match Hashtbl.find_opt slow_tbl name with
  | Some _ as t -> t
  | None -> !slow_default

let c_slow = counter "obs.slow_ops"

let note_slow name dur attrs =
  match slow_threshold name with
  | Some th when dur >= th ->
      incr c_slow;
      event ~level:Warn ~comp:"slow_op"
        ~attrs:
          (("duration_ms", Printf.sprintf "%.3f" (dur *. 1e3))
          :: ("threshold_ms", Printf.sprintf "%.3f" (th *. 1e3))
          :: attrs)
        name
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* spans *)

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_attrs : (string * string) list;
}

let max_spans = ref 200_000

let set_max_spans n =
  if n < 0 then invalid_arg "Obs.set_max_spans: limit must be >= 0";
  max_spans := n

let span_buf : span option array ref = ref (Array.make 256 None)
let nspans = ref 0
let c_dropped = counter "obs.spans_dropped"

let record_span s =
  if !nspans >= !max_spans then incr c_dropped
  else
    locked (fun () ->
        if !nspans = Array.length !span_buf then begin
          let a = Array.make (2 * !nspans) None in
          Array.blit !span_buf 0 a 0 !nspans;
          span_buf := a
        end;
        !span_buf.(!nspans) <- Some s;
        Stdlib.incr nspans)

let with_span ?(attrs = []) name f =
  if not !on then f ()
  else begin
    let start = now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = now () -. start in
        record_span
          { sp_name = name; sp_start = start -. t0; sp_dur = dur;
            sp_attrs = attrs };
        observe (histogram name) dur;
        note_slow name dur attrs)
      f
  end

let spans () =
  locked (fun () ->
      List.init !nspans (fun i ->
          match !span_buf.(i) with Some s -> s | None -> assert false))

let span_count () = !nspans

(* ------------------------------------------------------------------ *)
(* JSON *)

let dump_trace () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.1f,\"dur\":%.1f"
           (json_escape s.sp_name)
           (s.sp_start *. 1e6) (s.sp_dur *. 1e6));
      if s.sp_attrs <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          s.sp_attrs;
        Buffer.add_char buf '}'
      end;
      Buffer.add_string buf "}\n")
    (spans ());
  Buffer.contents buf

let write_trace ~path =
  let oc = open_out path in
  output_string oc (dump_trace ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* snapshots *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let sorted_bindings tbl value =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])

let snapshot () =
  locked (fun () ->
      {
        counters = sorted_bindings counters_tbl (fun c -> Atomic.get c.c_value);
        gauges = sorted_bindings gauges_tbl (fun g -> g.g_value);
        histograms = sorted_bindings histograms_tbl summarize;
      })

let counters_diff before after =
  let base = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before.counters;
  List.map
    (fun (k, v) -> (k, v - Option.value ~default:0 (Hashtbl.find_opt base k)))
    after.counters

let to_json snap =
  let buf = Buffer.create 1024 in
  let obj fields body =
    Buffer.add_char buf '{';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        body x)
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\"counters\":";
  obj snap.counters (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v));
  Buffer.add_string buf ",\"gauges\":";
  obj snap.gauges (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v)));
  Buffer.add_string buf ",\"histograms\":";
  obj snap.histograms (fun (k, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
           (json_escape k) h.hs_count (json_float h.hs_sum)
           (json_float h.hs_min) (json_float h.hs_max) (json_float h.hs_p50)
           (json_float h.hs_p95) (json_float h.hs_p99)));
  Buffer.add_char buf '}';
  Buffer.contents buf

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters_tbl;
      Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges_tbl;
      Hashtbl.iter
        (fun _ h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity)
        histograms_tbl;
      nspans := 0;
      Array.fill !ev_ring 0 (Array.length !ev_ring) None;
      ev_next := 0;
      ev_count := 0;
      ev_seq := 0)
