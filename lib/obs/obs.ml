(* Process-wide metrics registry and tracing spans.  See obs.mli. *)

let on =
  ref
    (match Sys.getenv_opt "DECIBEL_OBS" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

let set_enabled b = on := b
let enabled () = !on

let t0 = Unix.gettimeofday ()
let now () = Unix.gettimeofday ()

(* Domain-safety: counters are atomic (hit from parallel scan
   workers); everything slower-moving — interning tables, gauges,
   histograms, the event ring, the span buffer — is guarded by one
   registry mutex.  [locked] sections never call other [locked]
   functions (the mutex is not reentrant). *)
let reg_m = Mutex.create ()

let locked f =
  Mutex.lock reg_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_m) f

(* ------------------------------------------------------------------ *)
(* request-scoped trace context (full API in [Prof] below)

   The trace is the ambient identity of the request being profiled: a
   process-unique id plus a bag of atomic cost counters.  It is
   installed per-domain (DLS), so instrumentation sites attribute to
   whichever request's dynamic extent they run under — including on
   pool worker domains, where [Par] re-installs the submitting
   domain's trace around each chunk task. *)

let prof_nkinds = 8

type prof_trace = {
  tr_id : string;
  tr_ops : int Atomic.t; (* operator-node id allocator *)
  tr_bag : int Atomic.t array; (* length [prof_nkinds] *)
}

let prof_trace_key : prof_trace option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_prof_trace () = Domain.DLS.get prof_trace_key

(* ------------------------------------------------------------------ *)
(* counters *)

type counter = { c_name : string; c_value : int Atomic.t }

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.replace counters_tbl name c;
          c)

let incr c = if !on then Atomic.incr c.c_value
let add c n = if !on then ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value

let value_of name =
  match locked (fun () -> Hashtbl.find_opt counters_tbl name) with
  | Some c -> Atomic.get c.c_value
  | None -> 0

(* ------------------------------------------------------------------ *)
(* gauges *)

type gauge = { g_name : string; mutable g_value : float }

let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges_tbl name with
      | Some g -> g
      | None ->
          let g = { g_name = name; g_value = 0.0 } in
          Hashtbl.replace gauges_tbl name g;
          g)

let set_gauge g v = if !on then locked (fun () -> g.g_value <- v)
let gauge_value g = g.g_value

(* ------------------------------------------------------------------ *)
(* histograms *)

(* exponential latency buckets: 1 µs, 2 µs, ... ~32 s *)
let default_buckets = Array.init 26 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

type histogram = {
  h_name : string;
  h_buckets : float array; (* ascending upper bounds *)
  h_counts : int array; (* length = buckets + 1 (overflow) *)
  h_exemplars : string array; (* per-bucket last trace id; "" = none *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 32

let histogram ?buckets name =
  locked (fun () ->
      match Hashtbl.find_opt histograms_tbl name with
      | Some h ->
          (match buckets with
          | Some b when b <> h.h_buckets ->
              invalid_arg
                (Printf.sprintf
                   "Obs.histogram: %S already interned with %d bucket(s), \
                    requested %d (bucket layouts must match)"
                   name
                   (Array.length h.h_buckets)
                   (Array.length b))
          | _ -> h)
      | None ->
          let buckets = Option.value buckets ~default:default_buckets in
          let h =
            {
              h_name = name;
              h_buckets = buckets;
              h_counts = Array.make (Array.length buckets + 1) 0;
              h_exemplars = Array.make (Array.length buckets + 1) "";
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
            }
          in
          Hashtbl.replace histograms_tbl name h;
          h)

(* first bucket whose upper bound holds the value (linear scan: the
   bucket count is small and observations are per-operation, not
   per-tuple) *)
let bucket_index h v =
  let n = Array.length h.h_buckets in
  let rec go i = if i >= n || v <= h.h_buckets.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if !on then
    locked (fun () ->
        let i = bucket_index h v in
        h.h_counts.(i) <- h.h_counts.(i) + 1;
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v;
        (* tail-latency exemplar: remember which request last landed in
           this bucket, so a p99 spike links to a concrete trace *)
        match current_prof_trace () with
        | Some tr -> h.h_exemplars.(i) <- tr.tr_id
        | None -> ())

let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let rank = max 1 (min h.h_count rank) in
    let nb = Array.length h.h_buckets in
    let acc = ref 0 and result = ref h.h_max in
    (try
       for i = 0 to nb do
         acc := !acc + h.h_counts.(i);
         if !acc >= rank then begin
           result := (if i < nb then h.h_buckets.(i) else h.h_max);
           raise Exit
         end
       done
     with Exit -> ());
    (* a bucket bound can overshoot the true extremes; clamp *)
    min h.h_max (max h.h_min !result)
  end

type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

let summarize h =
  if h.h_count = 0 then
    {
      hs_count = 0;
      hs_sum = 0.0;
      hs_min = 0.0;
      hs_max = 0.0;
      hs_p50 = 0.0;
      hs_p95 = 0.0;
      hs_p99 = 0.0;
    }
  else
    {
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = h.h_min;
      hs_max = h.h_max;
      hs_p50 = quantile h 0.50;
      hs_p95 = quantile h 0.95;
      hs_p99 = quantile h 0.99;
    }

(* raw accessors for exporters (Prometheus needs per-bucket counts,
   not just the quantile summary) *)
let hist_name h = h.h_name
let hist_buckets h = Array.copy h.h_buckets
let hist_bucket_counts h = Array.copy h.h_counts
let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_exemplars h = locked (fun () -> Array.copy h.h_exemplars)

(* trace id of a sample request that landed near quantile [q]: the
   exemplar of the quantile's bucket, falling back to the nearest
   populated bucket below it, then above — so "show me a p99 request"
   answers with a concrete trace even when the exact bucket's exemplar
   predates tracing *)
let exemplar_near h q =
  locked (fun () ->
      if h.h_count = 0 then None
      else begin
        let rank = int_of_float (ceil (q *. float_of_int h.h_count)) in
        let rank = max 1 (min h.h_count rank) in
        let nb = Array.length h.h_buckets in
        let target = ref nb in
        let acc = ref 0 in
        (try
           for i = 0 to nb do
             acc := !acc + h.h_counts.(i);
             if !acc >= rank then begin
               target := i;
               raise Exit
             end
           done
         with Exit -> ());
        let pick = ref None in
        let i = ref !target in
        while !pick = None && !i >= 0 do
          if h.h_exemplars.(!i) <> "" then pick := Some h.h_exemplars.(!i);
          Stdlib.decr i
        done;
        let i = ref (!target + 1) in
        while !pick = None && !i <= nb do
          if h.h_exemplars.(!i) <> "" then pick := Some h.h_exemplars.(!i);
          Stdlib.incr i
        done;
        !pick
      end)

let sorted_values tbl =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []))

let all_counters () = List.map snd (sorted_values counters_tbl)
let all_gauges () = List.map snd (sorted_values gauges_tbl)
let all_histograms () = List.map snd (sorted_values histograms_tbl)
let counter_name c = c.c_name
let gauge_name g = g.g_name

(* ------------------------------------------------------------------ *)
(* JSON helpers (shared by events, traces and snapshots) *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

(* ------------------------------------------------------------------ *)
(* structured event log *)

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type event = {
  ev_seq : int;
  ev_time : float; (* unix epoch seconds *)
  ev_level : level;
  ev_comp : string;
  ev_msg : string;
  ev_attrs : (string * string) list;
}

(* bounded ring: when full the oldest event is overwritten and
   "obs.events_dropped" counts the loss *)
let ev_capacity = ref 4096
let ev_ring : event option array ref = ref (Array.make !ev_capacity None)
let ev_next = ref 0 (* next write slot *)
let ev_count = ref 0 (* events currently held, <= capacity *)
let ev_seq = ref 0 (* monotonic emission count *)
let ev_min_level = ref Debug
(* file sink with size-based rotation: when the live file would exceed
   [sk_max_bytes] it is renamed to <path>.1 (shifting .1 -> .2 ... up
   to [sk_keep], the oldest falling off) and a fresh file is opened, so
   long --watch-style runs cannot fill the disk *)
type sink = {
  sk_path : string;
  mutable sk_oc : out_channel;
  sk_max_bytes : int; (* 0 = unbounded *)
  sk_keep : int; (* rotated files retained; 0 = truncate in place *)
  mutable sk_written : int;
}

let ev_sink : sink option ref = ref None
let c_events = counter "obs.events"
let c_events_dropped = counter "obs.events_dropped"
let c_rotations = counter "obs.event_log_rotations"

let set_event_capacity n =
  if n < 1 then invalid_arg "Obs.set_event_capacity: capacity must be >= 1";
  ev_capacity := n;
  ev_ring := Array.make n None;
  ev_next := 0;
  ev_count := 0

let set_min_event_level l = ev_min_level := l

let set_event_sink ?(max_bytes = 8 * 1024 * 1024) ?(keep = 3) path =
  if max_bytes < 0 then invalid_arg "Obs.set_event_sink: max_bytes must be >= 0";
  if keep < 0 then invalid_arg "Obs.set_event_sink: keep must be >= 0";
  (match !ev_sink with
  | Some sk -> ( try close_out sk.sk_oc with Sys_error _ -> ())
  | None -> ());
  ev_sink :=
    match path with
    | None -> None
    | Some p ->
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 p in
        (* resume the byte budget of an existing file so re-opening a
           sink does not defer its first rotation *)
        let written =
          try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0
        in
        Some
          {
            sk_path = p;
            sk_oc = oc;
            sk_max_bytes = max_bytes;
            sk_keep = keep;
            sk_written = written;
          }

(* caller holds the registry mutex (called from [event]) *)
let rotate_sink sk =
  (try close_out sk.sk_oc with Sys_error _ -> ());
  if sk.sk_keep > 0 then begin
    for i = sk.sk_keep - 1 downto 1 do
      let src = Printf.sprintf "%s.%d" sk.sk_path i in
      if Sys.file_exists src then (
        try Sys.rename src (Printf.sprintf "%s.%d" sk.sk_path (i + 1))
        with Sys_error _ -> ())
    done;
    try Sys.rename sk.sk_path (sk.sk_path ^ ".1") with Sys_error _ -> ()
  end;
  sk.sk_oc <-
    open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 sk.sk_path;
  sk.sk_written <- 0;
  incr c_rotations

let event_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"seq\":%d,\"time\":%.6f,\"level\":\"%s\",\"comp\":\"%s\",\"msg\":\"%s\""
       e.ev_seq e.ev_time (level_name e.ev_level) (json_escape e.ev_comp)
       (json_escape e.ev_msg));
  if e.ev_attrs <> [] then begin
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      e.ev_attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let event ?(attrs = []) ?(level = Info) ~comp msg =
  if !on && level_rank level >= level_rank !ev_min_level then begin
    locked (fun () ->
        let e =
          {
            ev_seq = !ev_seq;
            ev_time = now ();
            ev_level = level;
            ev_comp = comp;
            ev_msg = msg;
            ev_attrs = attrs;
          }
        in
        Stdlib.incr ev_seq;
        let cap = Array.length !ev_ring in
        if !ev_count = cap then incr c_events_dropped
        else Stdlib.incr ev_count;
        !ev_ring.(!ev_next) <- Some e;
        ev_next := (!ev_next + 1) mod cap;
        match !ev_sink with
        | Some sk ->
            let line = event_json e in
            if
              sk.sk_max_bytes > 0 && sk.sk_written > 0
              && sk.sk_written + String.length line + 1 > sk.sk_max_bytes
            then rotate_sink sk;
            output_string sk.sk_oc line;
            output_char sk.sk_oc '\n';
            flush sk.sk_oc;
            sk.sk_written <- sk.sk_written + String.length line + 1
        | None -> ());
    incr c_events
  end

let events () =
  locked (fun () ->
      let cap = Array.length !ev_ring in
      let first = (!ev_next - !ev_count + cap) mod cap in
      List.init !ev_count (fun i ->
          match !ev_ring.((first + i) mod cap) with
          | Some e -> e
          | None -> assert false))

let events_emitted () = !ev_seq

(* keep the last [n] elements of a list *)
let last_n n l =
  let len = List.length l in
  if n >= len then l else List.filteri (fun i _ -> i >= len - n) l

let events_json ?limit () =
  let es = events () in
  let es = match limit with Some n when n >= 0 -> last_n n es | _ -> es in
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_json e);
      Buffer.add_char buf '\n')
    es;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* slow-operation log *)

let slow_tbl : (string, float) Hashtbl.t = Hashtbl.create 16

let slow_default =
  ref
    (match Sys.getenv_opt "DECIBEL_SLOW_MS" with
    | Some s -> ( try Some (float_of_string s /. 1e3) with Failure _ -> None)
    | None -> None)

let set_slow_threshold name secs = Hashtbl.replace slow_tbl name secs
let clear_slow_threshold name = Hashtbl.remove slow_tbl name
let set_slow_default secs = slow_default := secs

let slow_threshold name =
  match Hashtbl.find_opt slow_tbl name with
  | Some _ as t -> t
  | None -> !slow_default

let c_slow = counter "obs.slow_ops"

let note_slow name dur attrs =
  match slow_threshold name with
  | Some th when dur >= th ->
      incr c_slow;
      event ~level:Warn ~comp:"slow_op"
        ~attrs:
          (("duration_ms", Printf.sprintf "%.3f" (dur *. 1e3))
          :: ("threshold_ms", Printf.sprintf "%.3f" (th *. 1e3))
          :: attrs)
        name
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* request profiler: EXPLAIN ANALYZE over the span tree *)

module Prof = struct
  (* Two ambient pieces of state, deliberately separate:

     - the [trace] (type [prof_trace] near the top of the file, so
       [observe] can record exemplars): id + atomic counter bag.  It
       crosses domains — [Par] re-installs the submitting domain's
       trace around every worker task — so cost counters from a
       4-domain scan all land in the one request's bag.

     - the [builder]: the operator-tree stack.  It lives only on the
       domain that called [profiled]; worker-domain spans do not open
       tree nodes (their costs surface in the enclosing node's counter
       deltas instead), which keeps tree construction lock-free.

     A node's counters are the bag delta between span entry and exit:
     cumulative, children included — EXPLAIN ANALYZE semantics. *)

  type kind =
    | Tuples_scanned
    | Tuples_emitted
    | Pages_hit
    | Pages_missed
    | Bitmap_words
    | Delta_fragments
    | Wal_bytes
    | Bytes_decoded

  let all_kinds =
    [
      Tuples_scanned;
      Tuples_emitted;
      Pages_hit;
      Pages_missed;
      Bitmap_words;
      Delta_fragments;
      Wal_bytes;
      Bytes_decoded;
    ]

  let kind_index = function
    | Tuples_scanned -> 0
    | Tuples_emitted -> 1
    | Pages_hit -> 2
    | Pages_missed -> 3
    | Bitmap_words -> 4
    | Delta_fragments -> 5
    | Wal_bytes -> 6
    | Bytes_decoded -> 7

  let kind_name = function
    | Tuples_scanned -> "tuples_scanned"
    | Tuples_emitted -> "tuples_emitted"
    | Pages_hit -> "pages_hit"
    | Pages_missed -> "pages_missed"
    | Bitmap_words -> "bitmap_words"
    | Delta_fragments -> "delta_fragments"
    | Wal_bytes -> "wal_bytes"
    | Bytes_decoded -> "bytes_decoded"

  type trace = prof_trace

  let c_profiles = counter "prof.profiles"
  let c_prof_aborted = counter "prof.aborted"
  let bump = incr (* the counter [incr]; [incr] below counts kinds *)
  let trace_seq = Atomic.make 0

  let make_trace () =
    {
      tr_id =
        Printf.sprintf "t%d-%d" (Unix.getpid ())
          (Atomic.fetch_and_add trace_seq 1);
      tr_ops = Atomic.make 0;
      tr_bag = Array.init prof_nkinds (fun _ -> Atomic.make 0);
    }

  let trace_id (tr : trace) = tr.tr_id
  let current_trace = current_prof_trace

  let with_attribution tr f =
    let saved = Domain.DLS.get prof_trace_key in
    Domain.DLS.set prof_trace_key (Some tr);
    Fun.protect ~finally:(fun () -> Domain.DLS.set prof_trace_key saved) f

  (* hot path of the whole profiler: one DLS read, one atomic add when
     a trace is ambient.  Callers are per-operation (or per-page), never
     per-tuple — tuple counts arrive as single [add]s of batch totals. *)
  let add kind n =
    if n <> 0 then
      match Domain.DLS.get prof_trace_key with
      | Some tr ->
          Stdlib.ignore (Atomic.fetch_and_add tr.tr_bag.(kind_index kind) n)
      | None -> ()

  let incr kind = add kind 1

  (* ---------------- operator tree *)

  type node = {
    n_name : string;
    mutable n_rows : int;
    mutable n_dur : float; (* seconds *)
    n_counters : int array; (* length [prof_nkinds]; children included *)
    mutable n_children : node list;
  }

  type profile = {
    p_trace_id : string;
    p_label : string;
    p_dur : float; (* seconds *)
    p_root : node;
    p_aborted : string option; (* exception text when flushed partial *)
  }

  type frame = { f_node : node; f_bag0 : int array }

  type builder = { b_trace : prof_trace; mutable b_stack : frame list }
  (* b_stack: top first; the bottom frame is the synthetic root *)

  let builder_key : builder option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let bag_snapshot tr = Array.map Atomic.get tr.tr_bag

  let new_node name =
    {
      n_name = name;
      n_rows = -1; (* unset; falls back to the tuples_emitted delta *)
      n_dur = 0.0;
      n_counters = Array.make prof_nkinds 0;
      n_children = [];
    }

  (* called by [with_span] on entry/exit; no-ops unless this domain is
     inside a [profiled] extent *)
  let enter name =
    match Domain.DLS.get builder_key with
    | None -> ()
    | Some b ->
        Stdlib.ignore (Atomic.fetch_and_add b.b_trace.tr_ops 1);
        b.b_stack <-
          { f_node = new_node name; f_bag0 = bag_snapshot b.b_trace }
          :: b.b_stack

  let close_frame b f ~dur =
    let bag = bag_snapshot b.b_trace in
    for i = 0 to prof_nkinds - 1 do
      f.f_node.n_counters.(i) <- bag.(i) - f.f_bag0.(i)
    done;
    f.f_node.n_dur <- dur;
    if f.f_node.n_rows < 0 then
      f.f_node.n_rows <- f.f_node.n_counters.(kind_index Tuples_emitted)

  let exit_ dur =
    match Domain.DLS.get builder_key with
    | None -> ()
    | Some b -> (
        match b.b_stack with
        | [] | [ _ ] -> () (* never pop the synthetic root *)
        | f :: (parent :: _ as rest) ->
            close_frame b f ~dur;
            parent.f_node.n_children <- f.f_node :: parent.f_node.n_children;
            b.b_stack <- rest)

  (* annotate the innermost open operator with its logical row count
     (e.g. rows returned post-predicate, which no cost counter knows) *)
  let set_rows n =
    match Domain.DLS.get builder_key with
    | None -> ()
    | Some b -> (
        match b.b_stack with
        | f :: _ -> f.f_node.n_rows <- n
        | [] -> ())

  (* ---------------- ring of recent profiles *)

  let profiles_ring : profile option array ref = ref (Array.make 16 None)
  let profiles_next = ref 0
  let profiles_count = ref 0

  let set_profile_capacity n =
    if n < 1 then invalid_arg "Obs.Prof.set_profile_capacity: must be >= 1";
    locked (fun () ->
        profiles_ring := Array.make n None;
        profiles_next := 0;
        profiles_count := 0)

  let keep p =
    locked (fun () ->
        let cap = Array.length !profiles_ring in
        !profiles_ring.(!profiles_next) <- Some p;
        profiles_next := (!profiles_next + 1) mod cap;
        if !profiles_count < cap then Stdlib.incr profiles_count)

  let last_profile () =
    locked (fun () ->
        if !profiles_count = 0 then None
        else
          let cap = Array.length !profiles_ring in
          !profiles_ring.((!profiles_next - 1 + cap) mod cap))

  let recent_profiles () =
    locked (fun () ->
        let cap = Array.length !profiles_ring in
        let first = (!profiles_next - !profiles_count + cap) mod cap in
        List.init !profiles_count (fun i ->
            match !profiles_ring.((first + i) mod cap) with
            | Some p -> p
            | None -> assert false))

  (* ---------------- profiled execution *)

  let profiled ?(label = "request") f =
    let tr = make_trace () in
    let root = new_node label in
    let b =
      { b_trace = tr; b_stack = [ { f_node = root; f_bag0 = bag_snapshot tr } ] }
    in
    let saved_tr = Domain.DLS.get prof_trace_key in
    let saved_b = Domain.DLS.get builder_key in
    Domain.DLS.set prof_trace_key (Some tr);
    Domain.DLS.set builder_key (Some b);
    let start = now () in
    let finish aborted =
      let dur = now () -. start in
      Domain.DLS.set prof_trace_key saved_tr;
      Domain.DLS.set builder_key saved_b;
      (* an abort unwinds through [with_span]'s finally, so nested
         frames are normally already closed; drain defensively *)
      let rec drain () =
        match b.b_stack with
        | [] -> ()
        | [ f ] ->
            close_frame b f ~dur;
            b.b_stack <- []
        | f :: (parent :: _ as rest) ->
            close_frame b f ~dur;
            parent.f_node.n_children <- f.f_node :: parent.f_node.n_children;
            b.b_stack <- rest;
            drain ()
      in
      drain ();
      let rec order n =
        n.n_children <- List.rev n.n_children;
        List.iter order n.n_children
      in
      order root;
      let p =
        {
          p_trace_id = tr.tr_id;
          p_label = label;
          p_dur = dur;
          p_root = root;
          p_aborted = aborted;
        }
      in
      bump c_profiles;
      (match aborted with Some _ -> bump c_prof_aborted | None -> ());
      keep p;
      p
    in
    match f () with
    | v -> (v, finish None)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Stdlib.ignore (finish (Some (Printexc.to_string e)));
        Printexc.raise_with_backtrace e bt

  let total p kind = p.p_root.n_counters.(kind_index kind)

  (* ---------------- rendering *)

  let render p =
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "profile %s (%s) %.3f ms%s\n" p.p_trace_id p.p_label
         (p.p_dur *. 1e3)
         (match p.p_aborted with
         | None -> ""
         | Some e -> "  ABORTED: " ^ e));
    let rec go depth n =
      Buffer.add_string buf (String.make (2 * depth) ' ');
      Buffer.add_string buf
        (Printf.sprintf "-> %s  rows=%d  time=%.3fms" n.n_name n.n_rows
           (n.n_dur *. 1e3));
      let parts =
        List.filter_map
          (fun k ->
            let v = n.n_counters.(kind_index k) in
            if v = 0 then None else Some (Printf.sprintf "%s=%d" (kind_name k) v))
          all_kinds
      in
      if parts <> [] then
        Buffer.add_string buf ("  [" ^ String.concat " " parts ^ "]");
      Buffer.add_char buf '\n';
      List.iter (go (depth + 1)) n.n_children
    in
    go 0 p.p_root;
    Buffer.contents buf

  let rec node_json buf n =
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"%s\",\"rows\":%d,\"time_ms\":%s,\"counters\":{"
         (json_escape n.n_name) n.n_rows
         (json_float (n.n_dur *. 1e3)));
    let first = ref true in
    List.iter
      (fun k ->
        let v = n.n_counters.(kind_index k) in
        if v <> 0 then begin
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (kind_name k) v)
        end)
      all_kinds;
    Buffer.add_string buf "},\"children\":[";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        node_json buf c)
      n.n_children;
    Buffer.add_string buf "]}"

  let profile_json p =
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"trace_id\":\"%s\",\"label\":\"%s\",\"time_ms\":%s,\"aborted\":%s,\"root\":"
         (json_escape p.p_trace_id) (json_escape p.p_label)
         (json_float (p.p_dur *. 1e3))
         (match p.p_aborted with
         | None -> "null"
         | Some e -> Printf.sprintf "\"%s\"" (json_escape e)));
    node_json buf p.p_root;
    Buffer.add_char buf '}';
    Buffer.contents buf

  let profiles_json ?limit () =
    let ps = recent_profiles () in
    let ps =
      match limit with Some n when n >= 0 -> last_n n ps | _ -> ps
    in
    let buf = Buffer.create 1024 in
    Buffer.add_char buf '[';
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (profile_json p))
      ps;
    Buffer.add_char buf ']';
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* spans *)

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_attrs : (string * string) list;
}

let max_spans = ref 200_000

let set_max_spans n =
  if n < 0 then invalid_arg "Obs.set_max_spans: limit must be >= 0";
  max_spans := n

let span_buf : span option array ref = ref (Array.make 256 None)
let nspans = ref 0
let c_dropped = counter "obs.spans_dropped"

let record_span s =
  if !nspans >= !max_spans then incr c_dropped
  else
    locked (fun () ->
        if !nspans = Array.length !span_buf then begin
          let a = Array.make (2 * !nspans) None in
          Array.blit !span_buf 0 a 0 !nspans;
          span_buf := a
        end;
        !span_buf.(!nspans) <- Some s;
        Stdlib.incr nspans)

let with_span ?(attrs = []) name f =
  if not !on then f ()
  else begin
    let start = now () in
    Prof.enter name;
    Fun.protect
      ~finally:(fun () ->
        let dur = now () -. start in
        Prof.exit_ dur;
        record_span
          { sp_name = name; sp_start = start -. t0; sp_dur = dur;
            sp_attrs = attrs };
        observe (histogram name) dur;
        note_slow name dur attrs)
      f
  end

let spans () =
  locked (fun () ->
      List.init !nspans (fun i ->
          match !span_buf.(i) with Some s -> s | None -> assert false))

let span_count () = !nspans

(* ------------------------------------------------------------------ *)
(* JSON *)

let span_json s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.1f,\"dur\":%.1f"
       (json_escape s.sp_name)
       (s.sp_start *. 1e6) (s.sp_dur *. 1e6));
  if s.sp_attrs <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      s.sp_attrs;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Stream spans one line at a time: at the 200k-span cap a single
   concatenated string is tens of MB of transient allocation.  The
   buffer array and count are snapshotted under the lock (slots below
   [nspans] are immutable once written), then written lock-free. *)
let output_trace oc =
  let buf, n = locked (fun () -> (!span_buf, !nspans)) in
  for i = 0 to n - 1 do
    match buf.(i) with
    | Some s ->
        output_string oc (span_json s);
        output_char oc '\n'
    | None -> ()
  done

let dump_trace () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (span_json s);
      Buffer.add_char buf '\n')
    (spans ());
  Buffer.contents buf

let write_trace ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_trace oc)

(* ------------------------------------------------------------------ *)
(* snapshots *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let sorted_bindings tbl value =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])

let snapshot () =
  locked (fun () ->
      {
        counters = sorted_bindings counters_tbl (fun c -> Atomic.get c.c_value);
        gauges = sorted_bindings gauges_tbl (fun g -> g.g_value);
        histograms = sorted_bindings histograms_tbl summarize;
      })

let counters_diff before after =
  let base = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before.counters;
  List.map
    (fun (k, v) -> (k, v - Option.value ~default:0 (Hashtbl.find_opt base k)))
    after.counters

let to_json snap =
  let buf = Buffer.create 1024 in
  let obj fields body =
    Buffer.add_char buf '{';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        body x)
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\"counters\":";
  obj snap.counters (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v));
  Buffer.add_string buf ",\"gauges\":";
  obj snap.gauges (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v)));
  Buffer.add_string buf ",\"histograms\":";
  obj snap.histograms (fun (k, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
           (json_escape k) h.hs_count (json_float h.hs_sum)
           (json_float h.hs_min) (json_float h.hs_max) (json_float h.hs_p50)
           (json_float h.hs_p95) (json_float h.hs_p99)));
  Buffer.add_char buf '}';
  Buffer.contents buf

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters_tbl;
      Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges_tbl;
      Hashtbl.iter
        (fun _ h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          Array.fill h.h_exemplars 0 (Array.length h.h_exemplars) "";
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity)
        histograms_tbl;
      nspans := 0;
      Array.fill !ev_ring 0 (Array.length !ev_ring) None;
      ev_next := 0;
      ev_count := 0;
      ev_seq := 0;
      Array.fill !Prof.profiles_ring 0 (Array.length !Prof.profiles_ring) None;
      Prof.profiles_next := 0;
      Prof.profiles_count := 0)
