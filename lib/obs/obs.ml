(* Process-wide metrics registry and tracing spans.  See obs.mli. *)

let on =
  ref
    (match Sys.getenv_opt "DECIBEL_OBS" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

let set_enabled b = on := b
let enabled () = !on

let t0 = Unix.gettimeofday ()
let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* counters *)

type counter = { c_name : string; mutable c_value : int }

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace counters_tbl name c;
      c

let incr c = if !on then c.c_value <- c.c_value + 1
let add c n = if !on then c.c_value <- c.c_value + n
let counter_value c = c.c_value

let value_of name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c.c_value
  | None -> 0

(* ------------------------------------------------------------------ *)
(* gauges *)

type gauge = { g_name : string; mutable g_value : float }

let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  match Hashtbl.find_opt gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      Hashtbl.replace gauges_tbl name g;
      g

let set_gauge g v = if !on then g.g_value <- v
let gauge_value g = g.g_value

(* ------------------------------------------------------------------ *)
(* histograms *)

(* exponential latency buckets: 1 µs, 2 µs, ... ~32 s *)
let default_buckets = Array.init 26 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

type histogram = {
  h_name : string;
  h_buckets : float array; (* ascending upper bounds *)
  h_counts : int array; (* length = buckets + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 32

let histogram ?(buckets = default_buckets) name =
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_buckets = buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      Hashtbl.replace histograms_tbl name h;
      h

(* first bucket whose upper bound holds the value (linear scan: the
   bucket count is small and observations are per-operation, not
   per-tuple) *)
let bucket_index h v =
  let n = Array.length h.h_buckets in
  let rec go i = if i >= n || v <= h.h_buckets.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if !on then begin
    let i = bucket_index h v in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let rank = max 1 (min h.h_count rank) in
    let nb = Array.length h.h_buckets in
    let acc = ref 0 and result = ref h.h_max in
    (try
       for i = 0 to nb do
         acc := !acc + h.h_counts.(i);
         if !acc >= rank then begin
           result := (if i < nb then h.h_buckets.(i) else h.h_max);
           raise Exit
         end
       done
     with Exit -> ());
    (* a bucket bound can overshoot the true extremes; clamp *)
    min h.h_max (max h.h_min !result)
  end

type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

let summarize h =
  if h.h_count = 0 then
    {
      hs_count = 0;
      hs_sum = 0.0;
      hs_min = 0.0;
      hs_max = 0.0;
      hs_p50 = 0.0;
      hs_p95 = 0.0;
      hs_p99 = 0.0;
    }
  else
    {
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = h.h_min;
      hs_max = h.h_max;
      hs_p50 = quantile h 0.50;
      hs_p95 = quantile h 0.95;
      hs_p99 = quantile h 0.99;
    }

(* ------------------------------------------------------------------ *)
(* spans *)

type span = {
  sp_name : string;
  sp_start : float;
  sp_dur : float;
  sp_attrs : (string * string) list;
}

let max_spans = 200_000
let span_buf : span option array ref = ref (Array.make 256 None)
let nspans = ref 0
let c_dropped = counter "obs.spans_dropped"

let record_span s =
  if !nspans >= max_spans then incr c_dropped
  else begin
    if !nspans = Array.length !span_buf then begin
      let a = Array.make (2 * !nspans) None in
      Array.blit !span_buf 0 a 0 !nspans;
      span_buf := a
    end;
    !span_buf.(!nspans) <- Some s;
    Stdlib.incr nspans
  end

let with_span ?(attrs = []) name f =
  if not !on then f ()
  else begin
    let start = now () in
    Fun.protect
      ~finally:(fun () ->
        let dur = now () -. start in
        record_span
          { sp_name = name; sp_start = start -. t0; sp_dur = dur;
            sp_attrs = attrs };
        observe (histogram name) dur)
      f
  end

let spans () =
  List.init !nspans (fun i ->
      match !span_buf.(i) with Some s -> s | None -> assert false)

let span_count () = !nspans

(* ------------------------------------------------------------------ *)
(* JSON *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.9g" v else "0"

let dump_trace () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.1f,\"dur\":%.1f"
           (json_escape s.sp_name)
           (s.sp_start *. 1e6) (s.sp_dur *. 1e6));
      if s.sp_attrs <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          s.sp_attrs;
        Buffer.add_char buf '}'
      end;
      Buffer.add_string buf "}\n")
    (spans ());
  Buffer.contents buf

let write_trace ~path =
  let oc = open_out path in
  output_string oc (dump_trace ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* snapshots *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}

let sorted_bindings tbl value =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl [])

let snapshot () =
  {
    counters = sorted_bindings counters_tbl (fun c -> c.c_value);
    gauges = sorted_bindings gauges_tbl (fun g -> g.g_value);
    histograms = sorted_bindings histograms_tbl summarize;
  }

let counters_diff before after =
  let base = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before.counters;
  List.map
    (fun (k, v) -> (k, v - Option.value ~default:0 (Hashtbl.find_opt base k)))
    after.counters

let to_json snap =
  let buf = Buffer.create 1024 in
  let obj fields body =
    Buffer.add_char buf '{';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        body x)
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\"counters\":";
  obj snap.counters (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) v));
  Buffer.add_string buf ",\"gauges\":";
  obj snap.gauges (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (json_escape k) (json_float v)));
  Buffer.add_string buf ",\"histograms\":";
  obj snap.histograms (fun (k, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
           (json_escape k) h.hs_count (json_float h.hs_sum)
           (json_float h.hs_min) (json_float h.hs_max) (json_float h.hs_p50)
           (json_float h.hs_p95) (json_float h.hs_p99)));
  Buffer.add_char buf '}';
  Buffer.contents buf

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters_tbl;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges_tbl;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity)
    histograms_tbl;
  nspans := 0
