(** Prometheus text exposition (format 0.0.4) of the {!Obs} registry.

    Counters render as [<name>_total] with a [# TYPE ... counter]
    header, gauges as-is, histograms as cumulative
    [<name>_bucket{le="..."}] series plus [_sum] and [_count] —
    consistent with {!Obs.summarize} ([_count] = [hs_count], [_sum] =
    [hs_sum]).  Metric and label names are sanitized to
    [[a-zA-Z0-9_:]] (so ["buffer_pool.misses"] becomes
    [buffer_pool_misses_total]). *)

val content_type : string
(** The HTTP [Content-Type] for this exposition format. *)

val sanitize : string -> string
(** Replace every character outside [[a-zA-Z0-9_:]] with ['_'] and
    guard a leading digit with ['_']. *)

val render : ?extra:(string * (string * string) list * float) list -> unit -> string
(** The full registry as exposition text.  Families with registered
    help text (the [governor_*] and [prof_*] families notably) are
    preceded by a [# HELP] line; every family gets a [# TYPE] line.
    Label values are escaped per the format (backslash, double-quote,
    newline).  [extra] appends ad-hoc labeled gauge samples
    ([(metric, labels, value)]), e.g. {!Report.prometheus_samples}. *)
