(* Prometheus text exposition (format 0.0.4) for the Obs registry. *)

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let sanitize name =
  if name = "" then "_"
  else begin
    let buf = Buffer.create (String.length name) in
    String.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char buf c
        | '0' .. '9' ->
            if i = 0 then Buffer.add_char buf '_';
            Buffer.add_char buf c
        | _ -> Buffer.add_char buf '_')
      name;
    Buffer.contents buf
  end

(* label values: escape backslash, double-quote and newline *)
let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_string = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
             ls)
      ^ "}"

let float_string v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let add_sample buf name labels v =
  Buffer.add_string buf name;
  Buffer.add_string buf (labels_string labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (float_string v);
  Buffer.add_char buf '\n'

(* HELP text for metric families whose meaning is not obvious from the
   name alone — the governor and profiler families in particular.
   Keyed on the final exposition name (post-sanitize, post-suffix). *)
let help_table =
  [
    ("governor_admitted_total", "Operations admitted past admission control");
    ("governor_shed_total", "Operations rejected by admission control (load shed)");
    ("governor_cancelled_total", "Operations aborted by explicit cancellation");
    ("governor_deadline_exceeded_total", "Operations aborted at their deadline");
    ( "governor_budget_exceeded_total",
      "Operations aborted for exceeding their byte budget" );
    ("governor_queue_depth", "Operations currently waiting for admission");
    ("governor_pinned_bytes", "Bytes currently charged to governed operations");
    ( "governor_admission_wait",
      "Seconds spent waiting for an admission slot (histogram)" );
    ("prof_profiles_total", "Request profiles completed (EXPLAIN ANALYZE runs)");
    ( "prof_aborted_total",
      "Request profiles flushed partially after an abort \
       (deadline/cancel/error)" );
    ("obs_event_log_rotations_total", "Event-log sink file rotations");
    ("watchdog_ticks_total", "Health-watchdog rule evaluations");
    ("watchdog_warnings_total", "Watchdog ticks that concluded warn");
    ("watchdog_criticals_total", "Watchdog ticks that concluded critical");
    ("watchdog_level", "Sticky health level (0 ok, 1 warn, 2 critical)");
    ( "workload_branch_read_rate",
      "Per-branch EWMA read rate in scans per second" );
    ( "workload_branch_write_rate",
      "Per-branch EWMA write rate in operations per second" );
    ( "workload_branch_selectivity",
      "Per-branch tuples emitted over tuples scanned" );
    ( "workload_branch_fragments_replayed",
      "Delta fragments replayed by the branch's scans" );
    ( "advisor_recommendations",
      "Open storage-advisor recommendations by kind" );
    ("maint_tasks_run_total", "Maintenance tasks completed successfully");
    ( "maint_tasks_failed_total",
      "Maintenance tasks that raised or failed verification" );
    ( "maint_tasks_rolled_back_total",
      "Maintenance tasks rolled back (in-flight failure or crash recovery)" );
    ( "maint_bytes_reclaimed_total",
      "On-disk bytes reclaimed by compaction, materialization and GC" );
    ( "maint_running_since",
      "Unix time the in-flight maintenance task started (0 when idle)" );
    ( "maint_consecutive_failures",
      "Worst current consecutive-failure streak across maintenance targets" );
  ]

(* escape HELP text: backslash and newline only (HELP values are not
   quoted in the exposition format) *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Every family gets a HELP line: curated text when we have it, else a
   readable fallback derived from the metric name, so scrape tooling
   that keys on HELP/TYPE pairs never sees a bare family. *)
let default_help name =
  let base =
    match Filename.chop_suffix_opt ~suffix:"_total" name with
    | Some b -> b
    | None -> name
  in
  String.map (fun c -> if c = '_' then ' ' else c) base

let add_help buf name =
  let text =
    match List.assoc_opt name help_table with
    | Some text -> text
    | None -> default_help name
  in
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n" name (escape_help text))

let add_type buf name kind =
  add_help buf name;
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let render_histogram buf h =
  let name = sanitize (Obs.hist_name h) in
  add_type buf name "histogram";
  let bounds = Obs.hist_buckets h in
  let counts = Obs.hist_bucket_counts h in
  let acc = ref 0 in
  Array.iteri
    (fun i bound ->
      acc := !acc + counts.(i);
      add_sample buf (name ^ "_bucket")
        [ ("le", float_string bound) ]
        (float_of_int !acc))
    bounds;
  add_sample buf (name ^ "_bucket")
    [ ("le", "+Inf") ]
    (float_of_int (Obs.hist_count h));
  add_sample buf (name ^ "_sum") [] (Obs.hist_sum h);
  add_sample buf (name ^ "_count") [] (float_of_int (Obs.hist_count h))

let render ?(extra = []) () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      let name = sanitize (Obs.counter_name c) ^ "_total" in
      add_type buf name "counter";
      add_sample buf name [] (float_of_int (Obs.counter_value c)))
    (Obs.all_counters ());
  List.iter
    (fun g ->
      let name = sanitize (Obs.gauge_name g) in
      add_type buf name "gauge";
      add_sample buf name [] (Obs.gauge_value g))
    (Obs.all_gauges ());
  List.iter (render_histogram buf) (Obs.all_histograms ());
  (* extra labeled gauges (e.g. storage-report facts); group TYPE
     headers by metric name, preserving first-seen order *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, labels, v) ->
      let name = sanitize name in
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.replace seen name ();
        add_type buf name "gauge"
      end;
      add_sample buf name labels v)
    (List.stable_sort
       (fun (a, _, _) (b, _, _) -> compare (sanitize a) (sanitize b))
       extra);
  Buffer.contents buf
