(** Storage introspection report — the [ANALYZE]-style structure behind
    [Database.storage_report] and [decibel inspect].

    The quantities here are the ones the paper's §5 evaluation turns
    on: live vs. dead tuples per branch, bitmap population density,
    commit-delta chain length and bytes (the recreation/storage
    tradeoff), version-graph shape, heap fragmentation and buffer-pool
    residency.  Engines fill in the storage-scheme-specific
    {!engine_part}; [Database] adds graph and pool facts.

    Reports are plain data: building one never mutates the store, and
    it works even while recording is disabled ([DECIBEL_OBS=0]). *)

type branch = {
  br_name : string;
  br_id : int;
  br_head : int;  (** head version id *)
  br_active : bool;
  br_live_tuples : int;  (** tuples visible at the branch head *)
  br_dead_tuples : int;  (** stored-but-invisible tuples in its extent *)
  br_bitmap_bits : int;  (** liveness bits kept for this branch (0 when
                             the scheme keeps none, e.g. version-first) *)
  br_density : float;  (** live / bits, [0.] when no bits *)
  br_segments : int;  (** storage units holding the branch's data *)
  br_delta_chain : int;  (** deltas (or segments) replayed to
                             materialize the head commit *)
  br_delta_bytes : int;  (** on-disk delta bytes attributed to the branch *)
}

type segment = {
  sg_id : int;
  sg_file : string;
  sg_bytes : int;
  sg_pages : int;
  sg_records : int;  (** physical records, live or not *)
  sg_live_records : int;  (** records live in at least one active branch *)
  sg_fragmentation : float;  (** 1 - live/records, [0.] when empty *)
}

type history = {
  h_files : int;
  h_bytes : int;
  h_commits : int;
  h_max_chain : int;
  h_mean_chain : float;
}

type graph = {
  g_versions : int;
  g_branches : int;
  g_active_branches : int;
  g_depth : int;  (** longest root-to-version parent chain, in edges *)
  g_max_fanout : int;  (** max children of any single version *)
}

type pool = {
  p_page_size : int;
  p_capacity_pages : int;
  p_resident_pages : int;
  p_hits : int;
  p_misses : int;
  p_evictions : int;
  p_write_backs : int;
}

type column = {
  co_name : string;
  co_encoding : string;  (** dominant block encoding, e.g. ["delta"],
                             ["dict"]; ["-"] when nothing is sealed *)
  co_raw_bytes : int;  (** pre-encoding byte volume across blocks *)
  co_enc_bytes : int;  (** encoded byte volume across blocks *)
}
(** Per-column encoding facts from format-v2 segments (empty for v1). *)

type engine_part = {
  e_format : int;  (** segment layout version: 1 row-heap, 2 columnar *)
  e_branches : branch list;
  e_segments : segment list;
  e_columns : column list;
  e_history : history;
}
(** The storage-scheme-specific slice an engine contributes. *)

type t = {
  r_scheme : string;
  r_format : int;
  r_dataset_bytes : int;
  r_commit_meta_bytes : int;
  r_branches : branch list;
  r_segments : segment list;
  r_columns : column list;
  r_history : history;
  r_graph : graph;
  r_pool : pool;
  r_health : string;  (** ["healthy"], or ["degraded: <reason>"] once
                          corruption flipped the store read-only *)
  r_quarantined : (string * string) list;
      (** [(branch name, corruption reason)] for quarantined branches *)
}

val empty_history : history

val compression_ratio : column -> float
(** [raw / enc], [0.] when nothing is encoded. *)

val density : live:int -> bits:int -> float
(** [live / bits], [0.] when [bits = 0]. *)

val fragmentation : live:int -> records:int -> float
(** [1 - live/records], [0.] when [records = 0]. *)

val chain_stats : int list -> int * float
(** [(max, mean)] of a chain-length list; [(0, 0.)] when empty. *)

val to_json : t -> string
(** The whole report as one JSON object. *)

val to_text : t -> string
(** Human-readable multi-line rendering for [decibel inspect]. *)

val prometheus_samples : t -> (string * (string * string) list * float) list
(** Report facts as [(metric, labels, value)] gauge samples for
    {!Prometheus.render}'s [~extra]. *)
