(* Per-branch workload accounting: who reads and writes which branch,
   how often, and at what replay cost.  See workload.mli. *)

type stats = {
  w_table : string;
  w_branch : string;
  w_reads : int;
  w_writes : int;
  w_scanned : int;
  w_emitted : int;
  w_fragments : int;
  w_pages_hit : int;
  w_pages_missed : int;
  w_read_rate : float;
  w_write_rate : float;
  w_last_read : float;
  w_last_write : float;
}

let selectivity s =
  if s.w_scanned = 0 then 0.0
  else float_of_int s.w_emitted /. float_of_int s.w_scanned

let fragments_per_read s =
  if s.w_reads = 0 then 0.0
  else float_of_int s.w_fragments /. float_of_int s.w_reads

(* ------------------------------------------------------------------ *)
(* Lock-striped table.

   Entries are mutated under their shard's mutex (totals are small and
   the hooks fire once per scan batch / write op, never per tuple), so
   no atomics are needed; readers take each shard mutex in turn and
   therefore see consistent entries. *)

type entry = {
  e_table : string;
  e_branch : string;
  mutable e_reads : int;
  mutable e_writes : int;
  mutable e_scanned : int;
  mutable e_emitted : int;
  mutable e_fragments : int;
  mutable e_pages_hit : int;
  mutable e_pages_missed : int;
  mutable e_read_rate : float; (* EWMA events/s, decayed lazily *)
  mutable e_read_rate_ts : float; (* time the rate was last decayed to *)
  mutable e_write_rate : float;
  mutable e_write_rate_ts : float;
  mutable e_last_read : float;
  mutable e_last_write : float;
}

type shard = {
  sm : Mutex.t;
  tbl : (string * string, entry) Hashtbl.t;
}

let shard_bits = 4
let nshards = 1 lsl shard_bits

let shards =
  Array.init nshards (fun _ ->
      { sm = Mutex.create (); tbl = Hashtbl.create 16 })

let shard_of key = shards.(Hashtbl.hash key land (nshards - 1))

let with_shard s f =
  Mutex.lock s.sm;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.sm) f

(* EWMA time constant (seconds).  Each event contributes an impulse of
   [1/tau]; between events the rate decays as [exp (-dt/tau)], so a
   steady stream of r events/s converges to a rate of ~r and an idle
   branch cools to ~0 within a few tau. *)
let default_tau = 60.0
let tau = ref default_tau

let set_tau t =
  if t <= 0.0 then invalid_arg "Workload.set_tau: tau must be positive";
  tau := t

let now_default = function Some t -> t | None -> Unix.gettimeofday ()

(* decay a rate forward to [now] without adding an event; clock skew
   backwards leaves the rate untouched rather than inflating it *)
let decayed rate ts now =
  if now <= ts then rate else rate *. exp ((ts -. now) /. !tau)

let entry_for s table branch =
  let key = (table, branch) in
  match Hashtbl.find_opt s.tbl key with
  | Some e -> e
  | None ->
      let e =
        {
          e_table = table;
          e_branch = branch;
          e_reads = 0;
          e_writes = 0;
          e_scanned = 0;
          e_emitted = 0;
          e_fragments = 0;
          e_pages_hit = 0;
          e_pages_missed = 0;
          e_read_rate = 0.0;
          e_read_rate_ts = 0.0;
          e_write_rate = 0.0;
          e_write_rate_ts = 0.0;
          e_last_read = 0.0;
          e_last_write = 0.0;
        }
      in
      Hashtbl.replace s.tbl key e;
      e

let note_read ?now ~table ~branch ~scanned ~emitted ~fragments () =
  let now = now_default now in
  let s = shard_of (table, branch) in
  with_shard s (fun () ->
      let e = entry_for s table branch in
      e.e_reads <- e.e_reads + 1;
      e.e_scanned <- e.e_scanned + scanned;
      e.e_emitted <- e.e_emitted + emitted;
      e.e_fragments <- e.e_fragments + fragments;
      e.e_read_rate <-
        decayed e.e_read_rate e.e_read_rate_ts now +. (1.0 /. !tau);
      e.e_read_rate_ts <- now;
      e.e_last_read <- now)

let note_write ?now ~table ~branch () =
  let now = now_default now in
  let s = shard_of (table, branch) in
  with_shard s (fun () ->
      let e = entry_for s table branch in
      e.e_writes <- e.e_writes + 1;
      e.e_write_rate <-
        decayed e.e_write_rate e.e_write_rate_ts now +. (1.0 /. !tau);
      e.e_write_rate_ts <- now;
      e.e_last_write <- now)

(* ------------------------------------------------------------------ *)
(* Ambient attribution context for the buffer pool.

   Engines install the (table, branch) being scanned around the scan
   body; pool page hits/misses inside that extent attribute to it.  The
   key is per-domain, so parallel worker domains (which don't inherit
   the context) simply leave their page traffic unattributed.

   note_page sits on the pool's per-page hot path, so it must never
   take a shard mutex: counts accumulate in plain ints inside the
   domain-local context and are flushed in one locked update when the
   context is uninstalled. *)

type context = {
  cx_table : string;
  cx_branch : string;
  mutable cx_hits : int;
  mutable cx_missed : int;
}

let context_key : context option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let flush_context cx =
  if cx.cx_hits <> 0 || cx.cx_missed <> 0 then begin
    let s = shard_of (cx.cx_table, cx.cx_branch) in
    with_shard s (fun () ->
        let e = entry_for s cx.cx_table cx.cx_branch in
        e.e_pages_hit <- e.e_pages_hit + cx.cx_hits;
        e.e_pages_missed <- e.e_pages_missed + cx.cx_missed)
  end

let with_context ~table ~branch f =
  let cell = Domain.DLS.get context_key in
  let saved = !cell in
  let cx = { cx_table = table; cx_branch = branch; cx_hits = 0; cx_missed = 0 } in
  cell := Some cx;
  Fun.protect
    ~finally:(fun () ->
      cell := saved;
      flush_context cx)
    f

let note_page ~hit =
  match !(Domain.DLS.get context_key) with
  | None -> ()
  | Some cx ->
      if hit then cx.cx_hits <- cx.cx_hits + 1
      else cx.cx_missed <- cx.cx_missed + 1

(* ------------------------------------------------------------------ *)
(* Decay and snapshots *)

let decay ?now () =
  let now = now_default now in
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          Hashtbl.iter
            (fun _ e ->
              e.e_read_rate <- decayed e.e_read_rate e.e_read_rate_ts now;
              e.e_read_rate_ts <- now;
              e.e_write_rate <- decayed e.e_write_rate e.e_write_rate_ts now;
              e.e_write_rate_ts <- now)
            s.tbl))
    shards

let stats_of ?now e =
  let now = now_default now in
  {
    w_table = e.e_table;
    w_branch = e.e_branch;
    w_reads = e.e_reads;
    w_writes = e.e_writes;
    w_scanned = e.e_scanned;
    w_emitted = e.e_emitted;
    w_fragments = e.e_fragments;
    w_pages_hit = e.e_pages_hit;
    w_pages_missed = e.e_pages_missed;
    w_read_rate = decayed e.e_read_rate e.e_read_rate_ts now;
    w_write_rate = decayed e.e_write_rate e.e_write_rate_ts now;
    w_last_read = e.e_last_read;
    w_last_write = e.e_last_write;
  }

let snapshot ?now () =
  let acc = ref [] in
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          Hashtbl.iter (fun _ e -> acc := stats_of ?now e :: !acc) s.tbl))
    shards;
  List.sort
    (fun a b -> compare (a.w_table, a.w_branch) (b.w_table, b.w_branch))
    !acc

let find ?now ~table ~branch () =
  let s = shard_of (table, branch) in
  with_shard s (fun () ->
      Option.map (stats_of ?now) (Hashtbl.find_opt s.tbl (table, branch)))

let reset () =
  Array.iter (fun s -> with_shard s (fun () -> Hashtbl.reset s.tbl)) shards

(* ------------------------------------------------------------------ *)
(* JSON / text rendering *)

let esc = Obs.json_escape
let fl = Obs.json_float

let stats_json s =
  Printf.sprintf
    "{\"table\":\"%s\",\"branch\":\"%s\",\"reads\":%d,\"writes\":%d,\"scanned\":%d,\"emitted\":%d,\"selectivity\":%s,\"fragments\":%d,\"pages_hit\":%d,\"pages_missed\":%d,\"read_rate\":%s,\"write_rate\":%s,\"last_read\":%s,\"last_write\":%s}"
    (esc s.w_table) (esc s.w_branch) s.w_reads s.w_writes s.w_scanned
    s.w_emitted
    (fl (selectivity s))
    s.w_fragments s.w_pages_hit s.w_pages_missed (fl s.w_read_rate)
    (fl s.w_write_rate) (fl s.w_last_read) (fl s.w_last_write)

let to_json stats =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (stats_json s))
    stats;
  Buffer.add_char buf ']';
  Buffer.contents buf

let to_text stats =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "workload (%d branch entries)\n" (List.length stats);
  pf "  %-12s %-16s %7s %7s %9s %9s %6s %7s %9s %9s\n" "table" "branch"
    "reads" "writes" "scanned" "emitted" "sel" "frags" "read/s" "write/s";
  List.iter
    (fun s ->
      pf "  %-12s %-16s %7d %7d %9d %9d %6.3f %7d %9.4f %9.4f\n" s.w_table
        s.w_branch s.w_reads s.w_writes s.w_scanned s.w_emitted
        (selectivity s) s.w_fragments s.w_read_rate s.w_write_rate)
    stats;
  Buffer.contents buf

let prometheus_samples ?now () =
  List.concat_map
    (fun s ->
      let l = [ ("table", s.w_table); ("branch", s.w_branch) ] in
      [
        ("workload_branch_reads", l, float_of_int s.w_reads);
        ("workload_branch_writes", l, float_of_int s.w_writes);
        ("workload_branch_tuples_scanned", l, float_of_int s.w_scanned);
        ("workload_branch_tuples_emitted", l, float_of_int s.w_emitted);
        ("workload_branch_selectivity", l, selectivity s);
        ("workload_branch_fragments_replayed", l, float_of_int s.w_fragments);
        ("workload_branch_read_rate", l, s.w_read_rate);
        ("workload_branch_write_rate", l, s.w_write_rate);
      ])
    (snapshot ?now ())

(* ------------------------------------------------------------------ *)
(* JSONL checkpoint.

   One flat JSON object per line, written via temp+rename so a crash
   mid-save leaves the previous checkpoint intact.  Loading merges by
   summing totals and keeping the larger rate / newer timestamp, so a
   checkpoint restored on top of a live table never loses activity. *)

let save ?now ?table ~path () =
  let lines =
    List.filter_map
      (fun s ->
        match table with
        | Some t when t <> s.w_table -> None
        | _ -> Some (stats_json s))
      (snapshot ?now ())
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     List.iter
       (fun l ->
         output_string oc l;
         output_char oc '\n')
       lines;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* Minimal parser for the flat objects [stats_json] writes: string and
   number values only, no nesting.  Tolerant of unknown keys so the
   format can grow. *)
let parse_flat line =
  let n = String.length line in
  let fields = ref [] in
  let pos = ref 0 in
  let skip_ws () =
    while
      !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t' || line.[!pos] = ',')
    do
      incr pos
    done
  in
  let parse_string () =
    (* cursor on the opening quote *)
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then failwith "unterminated string"
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' when !pos + 1 < n ->
            (match line.[!pos + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | c -> Buffer.add_char buf c);
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    float_of_string (String.sub line start (!pos - start))
  in
  if n = 0 || line.[0] <> '{' then None
  else begin
    pos := 1;
    (try
       let rec go () =
         skip_ws ();
         if !pos < n && line.[!pos] = '"' then begin
           let key = parse_string () in
           skip_ws ();
           if !pos < n && line.[!pos] = ':' then begin
             incr pos;
             skip_ws ();
             if !pos < n then begin
               (match line.[!pos] with
               | '"' -> fields := (key, `Str (parse_string ())) :: !fields
               | _ -> fields := (key, `Num (parse_number ())) :: !fields);
               go ()
             end
           end
         end
       in
       go ()
     with Failure _ -> ());
    match !fields with [] -> None | fs -> Some fs
  end

let load ~path () =
  if not (Sys.file_exists path) then ()
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            match parse_flat line with
            | None -> ()
            | Some fields -> (
                let str k =
                  match List.assoc_opt k fields with
                  | Some (`Str s) -> Some s
                  | _ -> None
                in
                let num k =
                  match List.assoc_opt k fields with
                  | Some (`Num v) -> v
                  | _ -> 0.0
                in
                let int k = int_of_float (num k) in
                match (str "table", str "branch") with
                | Some table, Some branch ->
                    let s = shard_of (table, branch) in
                    with_shard s (fun () ->
                        let e = entry_for s table branch in
                        e.e_reads <- e.e_reads + int "reads";
                        e.e_writes <- e.e_writes + int "writes";
                        e.e_scanned <- e.e_scanned + int "scanned";
                        e.e_emitted <- e.e_emitted + int "emitted";
                        e.e_fragments <- e.e_fragments + int "fragments";
                        e.e_pages_hit <- e.e_pages_hit + int "pages_hit";
                        e.e_pages_missed <-
                          e.e_pages_missed + int "pages_missed";
                        (* the checkpointed rate was current at
                           last_read/last_write; resume from there so it
                           keeps decaying across the restart *)
                        if num "read_rate" > e.e_read_rate then begin
                          e.e_read_rate <- num "read_rate";
                          e.e_read_rate_ts <- num "last_read"
                        end;
                        if num "write_rate" > e.e_write_rate then begin
                          e.e_write_rate <- num "write_rate";
                          e.e_write_rate_ts <- num "last_write"
                        end;
                        e.e_last_read <- Float.max e.e_last_read (num "last_read");
                        e.e_last_write <-
                          Float.max e.e_last_write (num "last_write"))
                | _ -> ())
          done
        with End_of_file -> ())
  end
