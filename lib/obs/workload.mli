(** Per-branch workload accounting.

    [Obs] counters are process-global and [Obs.Prof] bags are
    per-request; neither records {e which branches} are read and
    written, how often, and at what replay cost over time — the access
    frequencies the recreation/storage tradeoff ("Principles of Dataset
    Versioning") needs.  This module is that record: a process-wide,
    lock-striped table keyed by [(table, branch)], fed from cheap hooks
    at the engines' existing batch-granularity instrumentation sites
    (one update per scan / write op, never per tuple) and from the
    buffer pool via an ambient attribution context.

    Rates are exponentially-weighted: each event adds an impulse of
    [1/tau] and the rate decays as [exp (-dt/tau)] between events
    (lazily, plus {!decay} for periodic sweeps), so a steady stream of
    r events/s reads as ~r and stale branches cool toward 0.  All
    entry points take an optional [?now] (unix epoch seconds) so decay
    is testable over simulated time.

    The table is domain-safe: entries are guarded by striped mutexes,
    and hooks from parallel scan workers serialize only against
    same-shard updates. *)

type stats = {
  w_table : string;
  w_branch : string;
  w_reads : int;  (** scan batches (scan / multi_scan / diff touches) *)
  w_writes : int;  (** write operations (insert/update/delete/commit) *)
  w_scanned : int;  (** tuples examined by single-branch scans *)
  w_emitted : int;  (** tuples emitted by single-branch scans *)
  w_fragments : int;  (** delta fragments replayed across scans *)
  w_pages_hit : int;  (** pool hits attributed via the ambient context *)
  w_pages_missed : int;
  w_read_rate : float;  (** EWMA reads/s, decayed to snapshot time *)
  w_write_rate : float;  (** EWMA writes/s *)
  w_last_read : float;  (** unix epoch seconds; [0.] = never *)
  w_last_write : float;
}

val selectivity : stats -> float
(** [emitted / scanned]; [0.] when nothing was scanned. *)

val fragments_per_read : stats -> float
(** Mean delta fragments replayed per read; [0.] when never read. *)

(** {1 Hooks} *)

val note_read :
  ?now:float ->
  table:string ->
  branch:string ->
  scanned:int ->
  emitted:int ->
  fragments:int ->
  unit ->
  unit
(** Record one read batch.  A multi-branch touch that cannot cheaply
    attribute per-branch tuple counts passes zeros — the read count and
    rate still move. *)

val note_write : ?now:float -> table:string -> branch:string -> unit -> unit

val with_context : table:string -> branch:string -> (unit -> 'a) -> 'a
(** Install [(table, branch)] as the calling domain's ambient
    attribution target for the extent of [f] (restored afterwards);
    {!note_page} calls inside attribute to it.  Worker domains do not
    inherit the context — their page traffic stays unattributed. *)

val note_page : hit:bool -> unit
(** Attribute one buffer-pool page hit/miss to the ambient context;
    no-op (one domain-local read) when none is installed.  Counts
    buffer lock-free inside the context and land in the table when
    {!with_context} returns, keeping the pool's per-page path cheap. *)

(** {1 Decay, snapshots and reset} *)

val decay : ?now:float -> unit -> unit
(** Decay every entry's rates forward to [now] (default: wall clock).
    Lazily-decayed entries make this optional; periodic sweeps keep
    snapshots of idle tables honest without waiting for traffic. *)

val snapshot : ?now:float -> unit -> stats list
(** All entries, rates decayed to [now], sorted by [(table, branch)]. *)

val find : ?now:float -> table:string -> branch:string -> unit -> stats option

val reset : unit -> unit
(** Drop every entry (tests and fresh benchmarks). *)

val set_tau : float -> unit
(** EWMA time constant in seconds (default 60).  Raises
    [Invalid_argument] when not positive. *)

(** {1 Rendering} *)

val stats_json : stats -> string
val to_json : stats list -> string
val to_text : stats list -> string

val prometheus_samples :
  ?now:float -> unit -> (string * (string * string) list * float) list
(** Labeled gauge samples (one family per stats field that matters for
    alerting), for the monitor's /metrics extra section. *)

(** {1 JSONL checkpoint}

    One flat JSON object per line.  [save] writes temp+rename so a
    crash mid-save keeps the previous checkpoint; [load] merges into
    the live table (totals sum, rates resume from their checkpointed
    value and timestamp), so stats survive restarts. *)

val save : ?now:float -> ?table:string -> path:string -> unit -> unit
(** Persist the table (optionally only entries of [table]), rates
    decayed to [now]. *)

val load : path:string -> unit -> unit
(** Merge a checkpoint back in; missing file is a no-op. *)
