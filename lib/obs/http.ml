(* Minimal single-threaded HTTP/1.1 server over Unix sockets, just
   enough for a metrics pull endpoint.  See http.mli. *)

type response = { status : int; content_type : string; body : string }

type handler =
  meth:string -> path:string -> query:(string * string) list -> response

type server = { fd : Unix.file_descr; port : int }

let text ?(status = 200) body =
  { status; content_type = "text/plain; charset=utf-8"; body }

let json ?(status = 200) body =
  { status; content_type = "application/json"; body }

(* JSON error bodies on every non-2xx route, so curl users and
   machines get structure, not a bare string *)
let error ~status msg =
  json ~status
    (Printf.sprintf "{\"error\":\"%s\",\"status\":%d}\n" (Obs.json_escape msg)
       status)

let not_found ~path = error ~status:404 (Printf.sprintf "no route %s" path)

let query_int ?default query key =
  match List.assoc_opt key query with
  | Some v -> ( match int_of_string_opt v with Some n -> Some n | None -> default)
  | None -> default

let listen ?(host = "127.0.0.1") ?(backlog = 16) ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { fd; port }

let port s = s.port
let close s = try Unix.close s.fd with Unix.Unix_error _ -> ()

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

(* Read until the end of the request head (CRLFCRLF) or EOF; the body,
   if any, is ignored — every route here is a GET. *)
let max_head = 16 * 1024

let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > max_head then Buffer.contents buf
    else
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec has_terminator i =
          i >= 0
          && (String.sub s i 4 = "\r\n\r\n" || has_terminator (i - 1))
        in
        if has_terminator (String.length s - 4) then s else go ()
      end
  in
  try go () with Unix.Unix_error _ -> Buffer.contents buf

(* "key=v&flag&n=10" -> [("key","v");("flag","");("n","10")]; no
   percent-decoding — route parameters here are plain integers/names *)
let parse_query qs =
  List.filter_map
    (fun kv ->
      if kv = "" then None
      else
        match String.index_opt kv '=' with
        | Some i ->
            Some
              ( String.sub kv 0 i,
                String.sub kv (i + 1) (String.length kv - i - 1) )
        | None -> Some (kv, ""))
    (String.split_on_char '&' qs)

(* "GET /metrics?n=10 HTTP/1.1" -> (meth, path, query) *)
let parse_request_line head =
  match String.index_opt head '\n' with
  | None -> None
  | Some i -> (
      let line = String.trim (String.sub head 0 i) in
      match String.split_on_char ' ' line with
      | meth :: target :: _ ->
          let path, query =
            match String.index_opt target '?' with
            | Some q ->
                ( String.sub target 0 q,
                  parse_query
                    (String.sub target (q + 1) (String.length target - q - 1))
                )
            | None -> (target, [])
          in
          if meth = "" || path = "" then None else Some (meth, path, query)
      | _ -> None)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write fd b !pos (len - !pos)
  done

let write_response fd r =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      r.status (status_text r.status) r.content_type (String.length r.body)
  in
  write_all fd (head ^ r.body)

let handle_one s (handler : handler) =
  let client, _ = Unix.accept s.fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      let response =
        match parse_request_line (read_head client) with
        | None -> error ~status:400 "malformed request"
        | Some (meth, path, query) -> (
            try handler ~meth ~path ~query
            with e -> error ~status:500 (Printexc.to_string e))
      in
      try write_response client response with Unix.Unix_error _ -> ())

let serve_forever s handler =
  while true do
    handle_one s handler
  done
