(** Health watchdog: a rules engine over report/workload/metric
    snapshots with a sticky, leveled status.

    Each {!tick} evaluates its threshold rules — dead-tuple ratio,
    delta-chain depth, quarantined branches / degraded health, shed
    rate rising, event-ring drops, failed or stalled maintenance
    tasks — and stores the verdict as the new
    status.  The status is {e sticky}: it is held between ticks rather
    than recomputed per request, so a [/health] probe is a constant-time
    read suitable for a load-balancer check.  Level transitions emit a
    leveled [Obs] event (component ["watchdog"]); every tick bumps
    ["watchdog.ticks"] and the ["watchdog.level"] gauge (0/1/2).

    "Rising"-style rules compare counters against their value at the
    previous tick, so the first tick never fires them. *)

type level = L_ok | L_warn | L_critical

val level_name : level -> string
(** ["ok"], ["warn"], ["critical"]. *)

type finding = { fi_rule : string; fi_level : level; fi_detail : string }

type rules = {
  r_dead_ratio_warn : float;  (** branch dead/(live+dead) warning bar *)
  r_dead_ratio_crit : float;
  r_chain_warn : int;  (** delta-chain depth warning bar *)
  r_chain_crit : int;
  r_shed_warn : int;  (** admissions shed since the previous tick *)
  r_events_dropped_warn : int;  (** ring drops since the previous tick *)
  r_hot_replay_warn : float;
      (** warn when a branch's [read rate x fragments/read] — the
          continuous delta-replay cost the advisor's materialize rule
          targets — reaches this many fragments/s *)
  r_maint_fail_warn : int;
      (** maintenance tasks failed since the previous tick *)
  r_maint_stall_s : float;
      (** warn when one maintenance task has been running this long *)
  r_maint_streak_crit : int;
      (** critical when the same target keeps failing: worst current
          consecutive-failure streak ([maint.consecutive_failures]) *)
}

val default_rules : rules

type status = {
  st_level : level;
  st_findings : finding list;
  st_ticks : int;  (** ticks evaluated so far *)
  st_time : float;  (** unix epoch seconds of the last tick; [0.] = never *)
}

type t

val create : ?rules:rules -> unit -> t

val tick :
  ?now:float ->
  t ->
  report:Report.t ->
  workload:Workload.stats list ->
  status
(** Evaluate all rules against the given snapshots and store (and
    return) the new status. *)

val status : t -> status
(** The last tick's verdict (all-ok with [st_ticks = 0] before the
    first tick). *)

val to_json : status -> string
val to_text : status -> string
