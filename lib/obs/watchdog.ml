(* Health watchdog: a rules engine over report/workload/metric
   snapshots with a sticky leveled status.  See watchdog.mli. *)

type level = L_ok | L_warn | L_critical

let level_name = function
  | L_ok -> "ok"
  | L_warn -> "warn"
  | L_critical -> "critical"

let level_rank = function L_ok -> 0 | L_warn -> 1 | L_critical -> 2
let worse a b = if level_rank a >= level_rank b then a else b

type finding = { fi_rule : string; fi_level : level; fi_detail : string }

type rules = {
  r_dead_ratio_warn : float;
  r_dead_ratio_crit : float;
  r_chain_warn : int;
  r_chain_crit : int;
  r_shed_warn : int;  (** admissions shed since the previous tick *)
  r_events_dropped_warn : int;  (** event-ring drops since previous tick *)
  r_hot_replay_warn : float;  (** fragments/s of hot-branch delta replay *)
  r_maint_fail_warn : int;  (** maintenance failures since previous tick *)
  r_maint_stall_s : float;  (** one maintenance task running this long *)
  r_maint_streak_crit : int;  (** consecutive failures on one target *)
}

let default_rules =
  {
    r_dead_ratio_warn = 0.5;
    r_dead_ratio_crit = 0.9;
    r_chain_warn = 32;
    r_chain_crit = 128;
    r_shed_warn = 1;
    r_events_dropped_warn = 1;
    r_hot_replay_warn = 1.0;
    r_maint_fail_warn = 1;
    r_maint_stall_s = 60.0;
    r_maint_streak_crit = 3;
  }

type status = {
  st_level : level;
  st_findings : finding list;
  st_ticks : int;
  st_time : float;  (** unix epoch seconds of the tick; [0.] = never *)
}

type t = {
  rules : rules;
  m : Mutex.t;
  mutable status : status;
  (* counter baselines so "rising" rules compare against the previous
     tick rather than process start *)
  mutable prev_shed : int;
  mutable prev_dropped : int;
  mutable prev_maint_failed : int;
}

let create ?(rules = default_rules) () =
  {
    rules;
    m = Mutex.create ();
    status = { st_level = L_ok; st_findings = []; st_ticks = 0; st_time = 0.0 };
    prev_shed = 0;
    prev_dropped = 0;
    prev_maint_failed = 0;
  }

let status t =
  Mutex.lock t.m;
  let s = t.status in
  Mutex.unlock t.m;
  s

let c_ticks = Obs.counter "watchdog.ticks"
let c_warnings = Obs.counter "watchdog.warnings"
let c_criticals = Obs.counter "watchdog.criticals"
let g_level = Obs.gauge "watchdog.level"

let dead_ratio (b : Report.branch) =
  let total = b.Report.br_live_tuples + b.Report.br_dead_tuples in
  if total = 0 then 0.0
  else float_of_int b.Report.br_dead_tuples /. float_of_int total

(* the maintenance gauges live in decibel_maint, which layers above
   this library; the shared metric registry is the seam *)
let g_maint_running = Obs.gauge "maint.running_since"
let g_maint_streak = Obs.gauge "maint.consecutive_failures"

let evaluate t ~now ~(report : Report.t) ~workload =
  let findings = ref [] in
  let found rule level detail =
    findings := { fi_rule = rule; fi_level = level; fi_detail = detail } :: !findings
  in
  (* degraded / quarantined: the database is already refusing writes,
     so a load balancer should stop routing here *)
  if report.Report.r_health <> "healthy" then
    found "degraded" L_critical
      (Printf.sprintf "database health: %s" report.Report.r_health);
  List.iter
    (fun (name, reason) ->
      found "quarantined_branch" L_critical
        (Printf.sprintf "branch %s quarantined: %s" name reason))
    report.Report.r_quarantined;
  List.iter
    (fun (b : Report.branch) ->
      if b.Report.br_active then begin
        let dr = dead_ratio b in
        if dr >= t.rules.r_dead_ratio_crit then
          found "dead_ratio" L_critical
            (Printf.sprintf "branch %s is %.0f%% dead tuples" b.Report.br_name
               (100.0 *. dr))
        else if dr >= t.rules.r_dead_ratio_warn then
          found "dead_ratio" L_warn
            (Printf.sprintf "branch %s is %.0f%% dead tuples" b.Report.br_name
               (100.0 *. dr));
        let chain = b.Report.br_delta_chain in
        if chain >= t.rules.r_chain_crit then
          found "delta_chain" L_critical
            (Printf.sprintf "branch %s delta chain is %d fragments deep"
               b.Report.br_name chain)
        else if chain >= t.rules.r_chain_warn then
          found "delta_chain" L_warn
            (Printf.sprintf "branch %s delta chain is %d fragments deep"
               b.Report.br_name chain)
      end)
    report.Report.r_branches;
  (* workload rule: a branch continuously paying delta replay — hot
     reads times fragments per scan — is the advisor's materialize
     case showing up as a health signal *)
  List.iter
    (fun (s : Workload.stats) ->
      let replay = s.Workload.w_read_rate *. Workload.fragments_per_read s in
      if replay >= t.rules.r_hot_replay_warn then
        found "hot_replay" L_warn
          (Printf.sprintf
             "branch %s replays %.1f delta fragments/s; run advise"
             s.Workload.w_branch replay))
    workload;
  (* shed rate rising: admissions rejected since the previous tick *)
  let shed = Obs.value_of "governor.shed" in
  let d_shed = shed - t.prev_shed in
  if t.status.st_ticks > 0 && d_shed >= t.rules.r_shed_warn then
    found "shed_rising" L_warn
      (Printf.sprintf "%d operations shed since the last tick" d_shed);
  t.prev_shed <- shed;
  let dropped = Obs.value_of "obs.events_dropped" in
  let d_dropped = dropped - t.prev_dropped in
  if t.status.st_ticks > 0 && d_dropped >= t.rules.r_events_dropped_warn then
    found "events_dropped" L_warn
      (Printf.sprintf "%d events dropped from the ring since the last tick"
         d_dropped);
  t.prev_dropped <- dropped;
  (* maintenance executor health: failures since the previous tick,
     a task stalled past its budget, and the same target failing over
     and over (a rewrite that will never succeed) *)
  let mfailed = Obs.value_of "maint.tasks_failed" in
  let d_mfailed = mfailed - t.prev_maint_failed in
  if t.status.st_ticks > 0 && d_mfailed >= t.rules.r_maint_fail_warn then
    found "maint_failed" L_warn
      (Printf.sprintf "%d maintenance task(s) failed since the last tick"
         d_mfailed);
  t.prev_maint_failed <- mfailed;
  let since = Obs.gauge_value g_maint_running in
  if since > 0. && now -. since >= t.rules.r_maint_stall_s then
    found "maint_stalled" L_warn
      (Printf.sprintf "a maintenance task has been running for %.0fs"
         (now -. since));
  let streak = int_of_float (Obs.gauge_value g_maint_streak) in
  if streak >= t.rules.r_maint_streak_crit then
    found "maint_streak" L_critical
      (Printf.sprintf
         "a maintenance target has failed %d times in a row" streak);
  List.rev !findings

let tick ?now t ~report ~workload =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      let findings = evaluate t ~now ~report ~workload in
      let level =
        List.fold_left (fun acc f -> worse acc f.fi_level) L_ok findings
      in
      let prev = t.status.st_level in
      let st =
        {
          st_level = level;
          st_findings = findings;
          st_ticks = t.status.st_ticks + 1;
          st_time = now;
        }
      in
      t.status <- st;
      Obs.incr c_ticks;
      Obs.set_gauge g_level (float_of_int (level_rank level));
      (match level with
      | L_warn -> Obs.incr c_warnings
      | L_critical -> Obs.incr c_criticals
      | L_ok -> ());
      (* leveled events on every transition, so the log shows when the
         status changed and why — not one line per tick *)
      if level <> prev then begin
        let ev_level =
          match level with
          | L_ok -> Obs.Info
          | L_warn -> Obs.Warn
          | L_critical -> Obs.Error
        in
        let attrs =
          ("level", level_name level)
          :: List.map (fun f -> (f.fi_rule, f.fi_detail)) findings
        in
        Obs.event ~level:ev_level ~comp:"watchdog" ~attrs
          (Printf.sprintf "health %s -> %s" (level_name prev)
             (level_name level))
      end;
      st)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let esc = Obs.json_escape
let fl = Obs.json_float

let finding_json f =
  Printf.sprintf "{\"rule\":\"%s\",\"level\":\"%s\",\"detail\":\"%s\"}"
    (esc f.fi_rule) (level_name f.fi_level) (esc f.fi_detail)

let to_json st =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "{\"status\":\"%s\",\"ticks\":%d,\"time\":%s,\"findings\":["
       (level_name st.st_level) st.st_ticks (fl st.st_time));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (finding_json f))
    st.st_findings;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_text st =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "health: %s (%d ticks)\n" (level_name st.st_level) st.st_ticks;
  List.iter
    (fun f ->
      pf "  [%s] %s: %s\n" (level_name f.fi_level) f.fi_rule f.fi_detail)
    st.st_findings;
  Buffer.contents buf
