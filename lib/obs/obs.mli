(** Process-wide observability: metrics registry and tracing spans.

    The paper's evaluation (§5) explains *why* a storage scheme wins
    through internal effects — pages touched, bitmap words scanned,
    delta bytes written — not just end-to-end latency.  This module is
    the registry those effects are recorded in: named monotonic
    counters, gauges, fixed-bucket latency histograms with quantile
    estimation, and lightweight nested tracing spans dumpable in Chrome
    trace format.

    Metric names follow the [layer.operation.unit] convention
    (e.g. ["buffer_pool.misses"], ["engine.scan.pages"],
    ["wal.bytes"]).  Handles are interned: [counter name] returns the
    same handle for the same name process-wide, so an instrumented
    module and a reader share a counter by agreeing on its name.

    Instrumentation is allocation-light — a counter increment is a
    branch and an integer store — and can be switched off at runtime
    with {!set_enabled} (also via the [DECIBEL_OBS=0] environment
    variable), leaving only the branch on the hot path.

    The registry is process-wide and single-threaded, like the engines
    it instruments; callers synchronize externally. *)

(** {1 Runtime switch} *)

val set_enabled : bool -> unit
(** Turn all recording on or off.  Defaults to on, unless the
    [DECIBEL_OBS] environment variable is ["0"] or ["false"].  While
    off, increments, observations and spans are skipped (handles can
    still be created and read). *)

val enabled : unit -> bool

(** {1 Counters}

    Named monotonic integer counters. *)

type counter

val counter : string -> counter
(** Find-or-create the counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int

val value_of : string -> int
(** Current value of a named counter; [0] if it was never created. *)

(** {1 Gauges}

    Named instantaneous values (set, not accumulated). *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Fixed-bucket histograms; the default buckets are exponential
    latency buckets from 1 µs to ~32 s, so observations are expected
    in seconds.  Quantiles are estimated as the upper bound of the
    bucket where the cumulative count crosses the rank, clamped to the
    observed min/max. *)

type histogram

val histogram : ?buckets:float array -> string -> histogram
(** Find-or-create.  [buckets] (ascending upper bounds) is honoured
    only on creation. *)

val observe : histogram -> float -> unit

type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

val summarize : histogram -> hist_summary
val quantile : histogram -> float -> float

(** {1 Tracing spans}

    [with_span name f] times [f] and records a completed span; spans
    nest naturally (caller's span is still open while the callee's
    runs).  Each span also feeds the histogram named [name], so span
    timings appear in snapshots with quantiles.  The trace buffer is
    bounded; overflow is counted in ["obs.spans_dropped"]. *)

type span = {
  sp_name : string;
  sp_start : float;  (** seconds since process start *)
  sp_dur : float;  (** seconds *)
  sp_attrs : (string * string) list;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

val spans : unit -> span list
(** Completed spans, in completion order. *)

val span_count : unit -> int

val dump_trace : unit -> string
(** The recorded spans as Chrome-trace-format JSON lines (one complete
    ["ph":"X"] event per line; load with [chrome://tracing] or
    Perfetto after wrapping in a JSON array). *)

val write_trace : path:string -> unit
(** {!dump_trace} to a file. *)

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}
(** All lists are sorted by name for deterministic output. *)

val snapshot : unit -> snapshot

val counters_diff : snapshot -> snapshot -> (string * int) list
(** [counters_diff before after]: per-counter deltas (counters absent
    in [before] count from 0); includes zero deltas so a consumer sees
    every registered counter. *)

val to_json : snapshot -> string
(** The snapshot as one JSON object:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val json_escape : string -> string
(** JSON string-body escaping (exposed for other JSON emitters). *)

val reset : unit -> unit
(** Zero every counter, gauge and histogram and clear the trace
    buffer.  Handles remain valid. *)
