(** Process-wide observability: metrics registry and tracing spans.

    The paper's evaluation (§5) explains *why* a storage scheme wins
    through internal effects — pages touched, bitmap words scanned,
    delta bytes written — not just end-to-end latency.  This module is
    the registry those effects are recorded in: named monotonic
    counters, gauges, fixed-bucket latency histograms with quantile
    estimation, and lightweight nested tracing spans dumpable in Chrome
    trace format.

    Metric names follow the [layer.operation.unit] convention
    (e.g. ["buffer_pool.misses"], ["engine.scan.pages"],
    ["wal.bytes"]).  Handles are interned: [counter name] returns the
    same handle for the same name process-wide, so an instrumented
    module and a reader share a counter by agreeing on its name.

    Instrumentation is allocation-light — a counter increment is a
    branch and an integer store — and can be switched off at runtime
    with {!set_enabled} (also via the [DECIBEL_OBS=0] environment
    variable), leaving only the branch on the hot path.

    The registry is process-wide and domain-safe: counter increments
    are atomic (they are hit from parallel scan workers), while
    interning, gauges, histogram observations, the event ring and the
    span buffer are serialized by a single registry mutex.  Mutators
    may therefore be called from any domain; plain readers
    ({!gauge_value}, {!hist_count}, ...) are unsynchronized and meant
    for report/export time, when writers are quiescent. *)

(** {1 Runtime switch} *)

val set_enabled : bool -> unit
(** Turn all recording on or off.  Defaults to on, unless the
    [DECIBEL_OBS] environment variable is ["0"] or ["false"].  While
    off, increments, observations and spans are skipped (handles can
    still be created and read). *)

val enabled : unit -> bool

(** {1 Counters}

    Named monotonic integer counters. *)

type counter

val counter : string -> counter
(** Find-or-create the counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int

val value_of : string -> int
(** Current value of a named counter; [0] if it was never created. *)

(** {1 Gauges}

    Named instantaneous values (set, not accumulated). *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Fixed-bucket histograms; the default buckets are exponential
    latency buckets from 1 µs to ~32 s, so observations are expected
    in seconds.  Quantiles are estimated as the upper bound of the
    bucket where the cumulative count crosses the rank, clamped to the
    observed min/max. *)

type histogram

val histogram : ?buckets:float array -> string -> histogram
(** Find-or-create.  [buckets] (ascending upper bounds) is honoured on
    creation.  Looking up an interned name with an explicit [buckets]
    that differs from the interned layout raises [Invalid_argument]
    rather than silently returning the old histogram; omitting
    [buckets] always succeeds. *)

val observe : histogram -> float -> unit

type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

val summarize : histogram -> hist_summary
(** Total: an empty histogram summarizes to all-zero fields (no [nan]
    or infinities), including immediately after {!reset}. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]; [0.] when the histogram is
    empty. *)

(** {2 Raw accessors}

    Exporters (e.g. the Prometheus text endpoint) need per-bucket
    counts, not just the quantile summary. *)

val hist_name : histogram -> string

val hist_buckets : histogram -> float array
(** Ascending upper bounds (a copy). *)

val hist_bucket_counts : histogram -> int array
(** Per-bucket observation counts, length [buckets + 1] — the last
    slot is the overflow bucket (a copy; not cumulative). *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_exemplars : histogram -> string array
(** Per-bucket exemplar trace ids (length [buckets + 1], aligned with
    {!hist_bucket_counts}; [""] = no traced request has landed in that
    bucket).  An observation made while a {!Prof} trace is ambient
    stamps its bucket with the trace id, so tail buckets link to a
    concrete recent request. *)

val exemplar_near : histogram -> float -> string option
(** [exemplar_near h q]: trace id of a sample request at quantile [q]
    — the exemplar of the quantile's bucket, falling back to the
    nearest populated bucket below it, then above.  [None] when the
    histogram is empty or no traced request has been observed. *)

val counter_name : counter -> string
val gauge_name : gauge -> string

val all_counters : unit -> counter list
(** Every registered counter, sorted by name. *)

val all_gauges : unit -> gauge list
val all_histograms : unit -> histogram list

(** {1 Structured event log}

    Leveled, component-tagged events with string attributes, held in a
    bounded in-memory ring (oldest overwritten on overflow, counted in
    ["obs.events_dropped"]) and optionally appended as JSONL to a file
    sink.  Emission respects the {!set_enabled} switch. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

type event = {
  ev_seq : int;  (** monotonic per-process emission index *)
  ev_time : float;  (** unix epoch seconds *)
  ev_level : level;
  ev_comp : string;  (** component tag, e.g. ["engine"], ["slow_op"] *)
  ev_msg : string;
  ev_attrs : (string * string) list;
}

val event :
  ?attrs:(string * string) list -> ?level:level -> comp:string -> string -> unit
(** Emit an event (default level [Info]).  Dropped entirely while
    recording is disabled or below the minimum level. *)

val events : unit -> event list
(** Ring contents, oldest first. *)

val events_emitted : unit -> int
(** Total events emitted since start (or {!reset}), including ones the
    ring has since dropped. *)

val event_json : event -> string
(** One event as a single-line JSON object. *)

val events_json : ?limit:int -> unit -> string
(** The ring as JSONL (one {!event_json} line per event).  [limit]
    keeps only the newest that many events. *)

val set_event_capacity : int -> unit
(** Resize the ring (clears it).  Raises [Invalid_argument] on a
    capacity < 1. *)

val set_min_event_level : level -> unit
(** Drop events below this level (default [Debug], i.e. keep all). *)

val set_event_sink : ?max_bytes:int -> ?keep:int -> string option -> unit
(** [Some path] appends each subsequent event to [path] as JSONL
    (flushed per line); [None] closes any open sink.

    The sink is size-bounded: when appending a line would push the file
    past [max_bytes] (default 8 MiB; [0] = unbounded) it is rotated —
    [path] becomes [path.1], [path.1] becomes [path.2], ... keeping at
    most [keep] rotated files (default 3; [0] truncates in place) —
    and a fresh [path] is opened.  Rotations are counted in
    ["obs.event_log_rotations"].  Re-opening an existing file resumes
    its byte budget from the on-disk size. *)

(** {1 Slow-operation log}

    When a {!with_span} duration reaches the threshold configured for
    its name (or the default threshold), a [Warn] event with component
    ["slow_op"] is emitted carrying the span's attrs plus
    [duration_ms] / [threshold_ms], and ["obs.slow_ops"] is
    incremented.  No threshold is set by default; [DECIBEL_SLOW_MS]
    (milliseconds) seeds the default threshold at startup. *)

val set_slow_threshold : string -> float -> unit
(** Per-span-name threshold in seconds ([0.] fires on every span). *)

val clear_slow_threshold : string -> unit

val set_slow_default : float option -> unit
(** Threshold for spans with no per-name entry; [None] disables. *)

val slow_threshold : string -> float option
(** Effective threshold for a span name. *)

(** {1 Tracing spans}

    [with_span name f] times [f] and records a completed span; spans
    nest naturally (caller's span is still open while the callee's
    runs).  Each span also feeds the histogram named [name], so span
    timings appear in snapshots with quantiles.  The trace buffer is
    bounded; overflow is counted in ["obs.spans_dropped"].  A span
    whose duration reaches its slow threshold also emits a slow-op
    event (see above). *)

type span = {
  sp_name : string;
  sp_start : float;  (** seconds since process start *)
  sp_dur : float;  (** seconds *)
  sp_attrs : (string * string) list;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

val spans : unit -> span list
(** Completed spans, in completion order. *)

val span_count : unit -> int

val set_max_spans : int -> unit
(** Cap on buffered spans (default 200_000); beyond it spans are
    dropped and counted.  Raises [Invalid_argument] when negative. *)

val span_json : span -> string
(** One span as a single-line Chrome-trace-format ["ph":"X"] event. *)

val output_trace : out_channel -> unit
(** Stream the recorded spans to [oc], one {!span_json} line per span.
    Spans are snapshotted up-front; the channel write happens outside
    the registry lock and never materializes the whole trace as one
    string (which matters at the 200k-span cap). *)

val dump_trace : unit -> string
(** The recorded spans as Chrome-trace-format JSON lines (one complete
    ["ph":"X"] event per line; load with [chrome://tracing] or
    Perfetto after wrapping in a JSON array).  Prefer {!output_trace}
    for large traces. *)

val write_trace : path:string -> unit
(** {!output_trace} to a file (streamed, closed on error). *)

(** {1 Request profiler}

    Request-scoped cost attribution and EXPLAIN ANALYZE-style operator
    trees.  {!Prof.profiled} allocates a {e trace} — a process-unique
    id plus a bag of atomic cost counters — and installs it ambiently
    (per-domain) for the extent of the request, so every
    {!Prof.add}-instrumented site (buffer pool, WAL, engines) and every
    {!with_span} attributes to the active request.  [Par] re-installs
    the submitting domain's trace around worker tasks, so a 4-domain
    parallel scan's costs land in the one requesting trace.

    Each {!with_span} inside the profiled extent (on the requesting
    domain) becomes a node of the operator tree; a node's counters are
    the bag delta between span entry and exit — cumulative, children
    included, exactly like EXPLAIN ANALYZE.  Completed profiles are
    kept in a bounded ring for the monitor's [/profile] route. *)

module Prof : sig
  (** Cost-counter kinds, chosen to explain the paper's scheme
      tradeoffs (§5): tuples touched vs. emitted, page traffic, bitmap
      words intersected (tuple-first/hybrid), delta fragments replayed
      (version-first), WAL and decode volume. *)
  type kind =
    | Tuples_scanned
    | Tuples_emitted
    | Pages_hit
    | Pages_missed
    | Bitmap_words
    | Delta_fragments
    | Wal_bytes
    | Bytes_decoded

  val all_kinds : kind list
  val kind_name : kind -> string

  type trace
  (** A request identity: trace id + atomic counter bag.  Shareable
      across domains. *)

  val make_trace : unit -> trace
  val trace_id : trace -> string

  val current_trace : unit -> trace option
  (** The trace ambient on the calling domain, if any. *)

  val with_attribution : trace -> (unit -> 'a) -> 'a
  (** Run [f] with [trace] installed as this domain's ambient trace
      (restored afterwards).  Used by [Par] to propagate the submitting
      domain's trace into pool worker tasks; usable directly by any
      code that moves work across domains. *)

  val add : kind -> int -> unit
  (** Attribute [n] units to the ambient trace; no-op (one DLS read)
      when no trace is installed.  Call per operation or per batch,
      never per tuple. *)

  val incr : kind -> unit

  val set_rows : int -> unit
  (** Annotate the innermost open operator node with its logical row
      count (e.g. rows returned post-predicate).  Unset nodes fall
      back to their [Tuples_emitted] delta. *)

  type node = {
    n_name : string;
    mutable n_rows : int;
    mutable n_dur : float;  (** seconds *)
    n_counters : int array;
        (** indexed like {!all_kinds}; cumulative — children included *)
    mutable n_children : node list;
  }

  type profile = {
    p_trace_id : string;
    p_label : string;
    p_dur : float;  (** seconds *)
    p_root : node;
    p_aborted : string option;
        (** exception text when the request aborted (deadline, cancel,
            ...) and a partial profile was flushed *)
  }

  val profiled : ?label:string -> (unit -> 'a) -> 'a * profile
  (** Run [f] under a fresh trace and operator-tree builder and return
      its result with the completed profile.  If [f] raises, a partial
      profile is still flushed to the ring (with [p_aborted] set) and
      the exception is re-raised with its backtrace.  Profiles are
      counted in ["prof.profiles"] / ["prof.aborted"]. *)

  val total : profile -> kind -> int
  (** Whole-request total for one counter kind (the root's delta). *)

  val last_profile : unit -> profile option

  val recent_profiles : unit -> profile list
  (** Ring contents, oldest first (capacity 16 by default). *)

  val set_profile_capacity : int -> unit
  (** Resize the profile ring (clears it); raises [Invalid_argument]
      when < 1. *)

  val render : profile -> string
  (** Human-readable profile tree, one operator per line:
      [-> name  rows=N  time=T  [kind=v ...]] (zero counters elided). *)

  val profile_json : profile -> string
  val profiles_json : ?limit:int -> unit -> string
  (** The ring as one JSON array of {!profile_json} objects; [limit]
      keeps only the newest that many. *)
end

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}
(** All lists are sorted by name for deterministic output. *)

val snapshot : unit -> snapshot

val counters_diff : snapshot -> snapshot -> (string * int) list
(** [counters_diff before after]: per-counter deltas (counters absent
    in [before] count from 0); includes zero deltas so a consumer sees
    every registered counter. *)

val to_json : snapshot -> string
(** The snapshot as one JSON object:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val json_escape : string -> string
(** JSON string-body escaping (exposed for other JSON emitters). *)

val json_float : float -> string
(** Finite floats as ["%.9g"]; non-finite values render as ["0"]
    (exposed for other JSON emitters). *)

val reset : unit -> unit
(** Zero every counter, gauge and histogram (including exemplars) and
    clear the trace buffer, event ring and profile ring.  Handles,
    slow thresholds and the event sink remain valid. *)
