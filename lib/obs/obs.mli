(** Process-wide observability: metrics registry and tracing spans.

    The paper's evaluation (§5) explains *why* a storage scheme wins
    through internal effects — pages touched, bitmap words scanned,
    delta bytes written — not just end-to-end latency.  This module is
    the registry those effects are recorded in: named monotonic
    counters, gauges, fixed-bucket latency histograms with quantile
    estimation, and lightweight nested tracing spans dumpable in Chrome
    trace format.

    Metric names follow the [layer.operation.unit] convention
    (e.g. ["buffer_pool.misses"], ["engine.scan.pages"],
    ["wal.bytes"]).  Handles are interned: [counter name] returns the
    same handle for the same name process-wide, so an instrumented
    module and a reader share a counter by agreeing on its name.

    Instrumentation is allocation-light — a counter increment is a
    branch and an integer store — and can be switched off at runtime
    with {!set_enabled} (also via the [DECIBEL_OBS=0] environment
    variable), leaving only the branch on the hot path.

    The registry is process-wide and domain-safe: counter increments
    are atomic (they are hit from parallel scan workers), while
    interning, gauges, histogram observations, the event ring and the
    span buffer are serialized by a single registry mutex.  Mutators
    may therefore be called from any domain; plain readers
    ({!gauge_value}, {!hist_count}, ...) are unsynchronized and meant
    for report/export time, when writers are quiescent. *)

(** {1 Runtime switch} *)

val set_enabled : bool -> unit
(** Turn all recording on or off.  Defaults to on, unless the
    [DECIBEL_OBS] environment variable is ["0"] or ["false"].  While
    off, increments, observations and spans are skipped (handles can
    still be created and read). *)

val enabled : unit -> bool

(** {1 Counters}

    Named monotonic integer counters. *)

type counter

val counter : string -> counter
(** Find-or-create the counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int

val value_of : string -> int
(** Current value of a named counter; [0] if it was never created. *)

(** {1 Gauges}

    Named instantaneous values (set, not accumulated). *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Fixed-bucket histograms; the default buckets are exponential
    latency buckets from 1 µs to ~32 s, so observations are expected
    in seconds.  Quantiles are estimated as the upper bound of the
    bucket where the cumulative count crosses the rank, clamped to the
    observed min/max. *)

type histogram

val histogram : ?buckets:float array -> string -> histogram
(** Find-or-create.  [buckets] (ascending upper bounds) is honoured on
    creation.  Looking up an interned name with an explicit [buckets]
    that differs from the interned layout raises [Invalid_argument]
    rather than silently returning the old histogram; omitting
    [buckets] always succeeds. *)

val observe : histogram -> float -> unit

type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

val summarize : histogram -> hist_summary
(** Total: an empty histogram summarizes to all-zero fields (no [nan]
    or infinities), including immediately after {!reset}. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]; [0.] when the histogram is
    empty. *)

(** {2 Raw accessors}

    Exporters (e.g. the Prometheus text endpoint) need per-bucket
    counts, not just the quantile summary. *)

val hist_name : histogram -> string

val hist_buckets : histogram -> float array
(** Ascending upper bounds (a copy). *)

val hist_bucket_counts : histogram -> int array
(** Per-bucket observation counts, length [buckets + 1] — the last
    slot is the overflow bucket (a copy; not cumulative). *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val counter_name : counter -> string
val gauge_name : gauge -> string

val all_counters : unit -> counter list
(** Every registered counter, sorted by name. *)

val all_gauges : unit -> gauge list
val all_histograms : unit -> histogram list

(** {1 Structured event log}

    Leveled, component-tagged events with string attributes, held in a
    bounded in-memory ring (oldest overwritten on overflow, counted in
    ["obs.events_dropped"]) and optionally appended as JSONL to a file
    sink.  Emission respects the {!set_enabled} switch. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

type event = {
  ev_seq : int;  (** monotonic per-process emission index *)
  ev_time : float;  (** unix epoch seconds *)
  ev_level : level;
  ev_comp : string;  (** component tag, e.g. ["engine"], ["slow_op"] *)
  ev_msg : string;
  ev_attrs : (string * string) list;
}

val event :
  ?attrs:(string * string) list -> ?level:level -> comp:string -> string -> unit
(** Emit an event (default level [Info]).  Dropped entirely while
    recording is disabled or below the minimum level. *)

val events : unit -> event list
(** Ring contents, oldest first. *)

val events_emitted : unit -> int
(** Total events emitted since start (or {!reset}), including ones the
    ring has since dropped. *)

val event_json : event -> string
(** One event as a single-line JSON object. *)

val events_json : unit -> string
(** The ring as JSONL (one {!event_json} line per event). *)

val set_event_capacity : int -> unit
(** Resize the ring (clears it).  Raises [Invalid_argument] on a
    capacity < 1. *)

val set_min_event_level : level -> unit
(** Drop events below this level (default [Debug], i.e. keep all). *)

val set_event_sink : string option -> unit
(** [Some path] appends each subsequent event to [path] as JSONL
    (flushed per line); [None] closes any open sink. *)

(** {1 Slow-operation log}

    When a {!with_span} duration reaches the threshold configured for
    its name (or the default threshold), a [Warn] event with component
    ["slow_op"] is emitted carrying the span's attrs plus
    [duration_ms] / [threshold_ms], and ["obs.slow_ops"] is
    incremented.  No threshold is set by default; [DECIBEL_SLOW_MS]
    (milliseconds) seeds the default threshold at startup. *)

val set_slow_threshold : string -> float -> unit
(** Per-span-name threshold in seconds ([0.] fires on every span). *)

val clear_slow_threshold : string -> unit

val set_slow_default : float option -> unit
(** Threshold for spans with no per-name entry; [None] disables. *)

val slow_threshold : string -> float option
(** Effective threshold for a span name. *)

(** {1 Tracing spans}

    [with_span name f] times [f] and records a completed span; spans
    nest naturally (caller's span is still open while the callee's
    runs).  Each span also feeds the histogram named [name], so span
    timings appear in snapshots with quantiles.  The trace buffer is
    bounded; overflow is counted in ["obs.spans_dropped"].  A span
    whose duration reaches its slow threshold also emits a slow-op
    event (see above). *)

type span = {
  sp_name : string;
  sp_start : float;  (** seconds since process start *)
  sp_dur : float;  (** seconds *)
  sp_attrs : (string * string) list;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

val spans : unit -> span list
(** Completed spans, in completion order. *)

val span_count : unit -> int

val set_max_spans : int -> unit
(** Cap on buffered spans (default 200_000); beyond it spans are
    dropped and counted.  Raises [Invalid_argument] when negative. *)

val dump_trace : unit -> string
(** The recorded spans as Chrome-trace-format JSON lines (one complete
    ["ph":"X"] event per line; load with [chrome://tracing] or
    Perfetto after wrapping in a JSON array). *)

val write_trace : path:string -> unit
(** {!dump_trace} to a file. *)

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_summary) list;
}
(** All lists are sorted by name for deterministic output. *)

val snapshot : unit -> snapshot

val counters_diff : snapshot -> snapshot -> (string * int) list
(** [counters_diff before after]: per-counter deltas (counters absent
    in [before] count from 0); includes zero deltas so a consumer sees
    every registered counter. *)

val to_json : snapshot -> string
(** The snapshot as one JSON object:
    [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val json_escape : string -> string
(** JSON string-body escaping (exposed for other JSON emitters). *)

val json_float : float -> string
(** Finite floats as ["%.9g"]; non-finite values render as ["0"]
    (exposed for other JSON emitters). *)

val reset : unit -> unit
(** Zero every counter, gauge and histogram and clear the trace buffer
    and event ring.  Handles, slow thresholds and the event sink
    remain valid. *)
