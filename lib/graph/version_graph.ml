open Decibel_util

type version_id = int
type branch_id = int

let root_version = 0
let master = 0

type version = {
  id : version_id;
  parents : version_id list;
  on_branch : branch_id;
  message : string;
}

type branch = {
  bid : branch_id;
  name : string;
  base : version_id;
  mutable head : version_id;
  mutable active : bool;
}

type t = {
  mutable vers : version array; (* index = id; grown by doubling *)
  mutable nvers : int;
  mutable brs : branch array;
  mutable nbrs : int;
  by_name : (string, branch_id) Hashtbl.t;
}

let dummy_version = { id = -1; parents = []; on_branch = -1; message = "" }

let dummy_branch =
  { bid = -1; name = ""; base = -1; head = -1; active = false }

let create () =
  let root = { id = 0; parents = []; on_branch = 0; message = "init" } in
  let m = { bid = 0; name = "master"; base = 0; head = 0; active = true } in
  let by_name = Hashtbl.create 16 in
  Hashtbl.replace by_name "master" 0;
  let vers = Array.make 16 dummy_version in
  vers.(0) <- root;
  let brs = Array.make 8 dummy_branch in
  brs.(0) <- m;
  { vers; nvers = 1; brs; nbrs = 1; by_name }

let version t id =
  if id < 0 || id >= t.nvers then
    invalid_arg (Printf.sprintf "Version_graph.version: unknown id %d" id);
  t.vers.(id)

let mem_version t id = id >= 0 && id < t.nvers

let branch t bid =
  if bid < 0 || bid >= t.nbrs then
    invalid_arg (Printf.sprintf "Version_graph.branch: unknown branch %d" bid);
  t.brs.(bid)

let push_version t v =
  if t.nvers = Array.length t.vers then begin
    let a = Array.make (2 * t.nvers) dummy_version in
    Array.blit t.vers 0 a 0 t.nvers;
    t.vers <- a
  end;
  t.vers.(t.nvers) <- v;
  t.nvers <- t.nvers + 1

let push_branch t b =
  if t.nbrs = Array.length t.brs then begin
    let a = Array.make (2 * t.nbrs) dummy_branch in
    Array.blit t.brs 0 a 0 t.nbrs;
    t.brs <- a
  end;
  t.brs.(t.nbrs) <- b;
  t.nbrs <- t.nbrs + 1

let commit t bid ~message =
  let b = branch t bid in
  let v =
    { id = t.nvers; parents = [ b.head ]; on_branch = bid; message }
  in
  push_version t v;
  b.head <- v.id;
  v.id

let merge_commit t ~into ~theirs ~message =
  let b = branch t into in
  let _ = version t theirs in
  let v =
    { id = t.nvers; parents = [ b.head; theirs ]; on_branch = into; message }
  in
  push_version t v;
  b.head <- v.id;
  v.id

let create_branch t ~name ~from =
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Version_graph.create_branch: name taken: " ^ name);
  let _ = version t from in
  let b =
    { bid = t.nbrs; name; base = from; head = from; active = true }
  in
  push_branch t b;
  Hashtbl.replace t.by_name name b.bid;
  b.bid

let retire t bid = (branch t bid).active <- false

let branch_by_name t name =
  Option.map (fun bid -> branch t bid) (Hashtbl.find_opt t.by_name name)

let branches t = List.init t.nbrs (fun i -> t.brs.(i))
let versions t = List.init t.nvers (fun i -> t.vers.(i))

let head t bid = (branch t bid).head

let heads t = List.init t.nbrs (fun i -> (i, t.brs.(i).head))

let is_head t vid = List.exists (fun (_, h) -> h = vid) (heads t)

let version_count t = t.nvers
let branch_count t = t.nbrs

(* Ids are topologically ordered (parents precede children), so one
   forward pass computes longest path and fan-out. *)
let depth t =
  let d = Array.make t.nvers 0 in
  let deepest = ref 0 in
  for i = 1 to t.nvers - 1 do
    List.iter (fun p -> if d.(p) + 1 > d.(i) then d.(i) <- d.(p) + 1)
      t.vers.(i).parents;
    if d.(i) > !deepest then deepest := d.(i)
  done;
  !deepest

let max_fanout t =
  let kids = Array.make t.nvers 0 in
  let widest = ref 0 in
  for i = 1 to t.nvers - 1 do
    List.iter
      (fun p ->
        kids.(p) <- kids.(p) + 1;
        if kids.(p) > !widest then widest := kids.(p))
      t.vers.(i).parents
  done;
  !widest

(* Ancestor traversal exploits id monotonicity: walk a max-priority
   worklist of pending ids; parents are always smaller, so visiting in
   descending id order touches each ancestor once. *)
let fold_ancestors t vid f init =
  let _ = version t vid in
  let seen = Bitvec.create ~capacity:t.nvers () in
  Bitvec.set seen vid;
  let acc = ref init in
  (* descending scan: a simple loop over a bitvec of pending nodes *)
  let i = ref vid in
  while !i >= 0 do
    if Bitvec.get seen !i then begin
      acc := f !acc !i;
      List.iter (fun p -> Bitvec.set seen p) t.vers.(!i).parents
    end;
    decr i
  done;
  !acc

let ancestors t vid = List.rev (fold_ancestors t vid (fun acc i -> i :: acc) [])

let is_ancestor t ~ancestor vid =
  ancestor <= vid
  && fold_ancestors t vid (fun acc i -> acc || i = ancestor) false

let lca t a b =
  let mark vid =
    let s = Bitvec.create ~capacity:t.nvers () in
    let _ = fold_ancestors t vid (fun () i -> Bitvec.set s i) () in
    s
  in
  let common = Bitvec.inter (mark a) (mark b) in
  (* greatest common ancestor id; the root is always common *)
  Bitvec.fold_set (fun acc i -> max acc i) 0 common

let lineage t vid =
  let _ = version t vid in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  (* Depth-first following parents in precedence order, emitting each
     version the first time it is reached.  First parents are the
     precedence winners, so a merge's dominant lineage is scanned before
     the subordinate one. *)
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      out := id :: !out;
      List.iter visit t.vers.(id).parents
    end
  in
  visit vid;
  List.rev !out

let serialize t =
  let buf = Buffer.create 1024 in
  Binio.write_varint buf t.nvers;
  for i = 0 to t.nvers - 1 do
    let v = t.vers.(i) in
    Binio.write_list (fun b p -> Binio.write_varint b p) buf v.parents;
    Binio.write_varint buf v.on_branch;
    Binio.write_string buf v.message
  done;
  Binio.write_varint buf t.nbrs;
  for i = 0 to t.nbrs - 1 do
    let b = t.brs.(i) in
    Binio.write_string buf b.name;
    Binio.write_varint buf b.base;
    Binio.write_varint buf b.head;
    Binio.write_u8 buf (if b.active then 1 else 0)
  done;
  Buffer.contents buf

let deserialize s =
  let pos = ref 0 in
  let nvers = Binio.read_varint s pos in
  let vers =
    Array.init nvers (fun id ->
        let parents = Binio.read_list (fun s p -> Binio.read_varint s p) s pos in
        let on_branch = Binio.read_varint s pos in
        let message = Binio.read_string s pos in
        { id; parents; on_branch; message })
  in
  let nbrs = Binio.read_varint s pos in
  let by_name = Hashtbl.create 16 in
  let brs =
    Array.init nbrs (fun bid ->
        let name = Binio.read_string s pos in
        let base = Binio.read_varint s pos in
        let head = Binio.read_varint s pos in
        let active = Binio.read_u8 s pos = 1 in
        Hashtbl.replace by_name name bid;
        { bid; name; base; head; active })
  in
  let t =
    {
      vers = (if nvers = 0 then Array.make 1 dummy_version else vers);
      nvers;
      brs = (if nbrs = 0 then Array.make 1 dummy_branch else brs);
      nbrs;
      by_name;
    }
  in
  t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun v ->
      Format.fprintf fmt "v%d <- [%s] on b%d %s@,"
        v.id
        (String.concat "; " (List.map string_of_int v.parents))
        v.on_branch v.message)
    (versions t);
  List.iter
    (fun b ->
      Format.fprintf fmt "branch %d %S base=v%d head=v%d%s@," b.bid b.name
        b.base b.head
        (if b.active then "" else " (retired)"))
    (branches t);
  Format.fprintf fmt "@]"
