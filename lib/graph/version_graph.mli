(** The version graph.

    Version-level provenance is maintained as a directed acyclic graph
    whose nodes are committed versions and whose edges point to parent
    versions; a branch is a named working copy whose lineage is the path
    from its head to the root (paper §2.2.2).  All storage schemes keep
    this graph in memory and persist it on every branch or commit.

    Version ids and branch ids are dense non-negative integers assigned
    in creation order, so a parent's id is always smaller than its
    child's — several algorithms below exploit that monotonicity. *)

type version_id = int
type branch_id = int

val root_version : version_id
(** The version created by [init] (always [0]). *)

val master : branch_id
(** The initial, authoritative branch (always [0]). *)

type version = {
  id : version_id;
  parents : version_id list;
      (** Most-recent-head first; a merge commit lists the precedence
          winner first. Empty only for the root. *)
  on_branch : branch_id;  (** Branch this version was committed to. *)
  message : string;
}

type branch = {
  bid : branch_id;
  name : string;
  base : version_id;  (** Version the branch was created from. *)
  mutable head : version_id;
  mutable active : bool;
      (** Benchmark strategies retire branches; inactive branches take
          no further modifications but remain queryable. *)
}

type t

val create : unit -> t
(** A graph holding only the root version and the master branch. *)

val commit : t -> branch_id -> message:string -> version_id
(** New version on the branch; its single parent is the old head. *)

val merge_commit :
  t -> into:branch_id -> theirs:version_id -> message:string -> version_id
(** New head of [into] with parents [\[old head of into; theirs\]]. *)

val create_branch : t -> name:string -> from:version_id -> branch_id
(** Raises [Invalid_argument] if the name is taken or the version is
    unknown. *)

val retire : t -> branch_id -> unit

val version : t -> version_id -> version

val mem_version : t -> version_id -> bool
(** Whether the id names a version (no exception; used by fsck-style
    cross-reference checks). *)

val branch : t -> branch_id -> branch
val branch_by_name : t -> string -> branch option
val branches : t -> branch list
(** In creation order. *)

val versions : t -> version list
(** In creation (= topological) order. *)

val head : t -> branch_id -> version_id
val heads : t -> (branch_id * version_id) list
(** Head version of every branch, in branch order. *)

val is_head : t -> version_id -> bool
(** Whether the version is some branch's head — the paper's [HEAD()]
    predicate (Table 1, query 4). *)

val version_count : t -> int
val branch_count : t -> int

val depth : t -> int
(** Longest parent chain from any version back to the root, in edges
    ([0] for a graph holding only the root). *)

val max_fanout : t -> int
(** Maximum number of children of any single version — how bushy the
    DAG is ([0] when only the root exists). *)

val is_ancestor : t -> ancestor:version_id -> version_id -> bool
(** Reflexive: a version is its own ancestor. *)

val ancestors : t -> version_id -> version_id list
(** All ancestors including the version itself, descending id order. *)

val lca : t -> version_id -> version_id -> version_id
(** Lowest common ancestor used as the merge base: the common ancestor
    with the greatest id (ids are topological, so this is a deepest
    common ancestor; like git's merge-base we pick one deterministically
    when several candidates exist).  Total because every pair shares the
    root. *)

val lineage : t -> version_id -> version_id list
(** Versions from the given one back to the root, newest first,
    following parents in precedence order and visiting each version
    once (the scan order for version-first lineage traversal, §3.3). *)

val serialize : t -> string
val deserialize : string -> t

val pp : Format.formatter -> t -> unit
(** Multi-line dump for debugging. *)
