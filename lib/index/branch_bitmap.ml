(** Branch-oriented bitmap layout: one independently growable bit
    vector per branch, rows contiguous within a branch (paper §3.1).
    Expanding one branch never touches the others, and a single-branch
    scan walks one dense vector. *)

open Decibel_util

type t = {
  mutable columns : Bitvec.t array;
  mutable nbranches : int;
  mutable rows : int;
}

let layout = "branch-oriented"

let create () =
  { columns = Array.make 4 (Bitvec.create ()); nbranches = 0; rows = 0 }

let branch_count t = t.nbranches
let row_count t = t.rows

let check_branch t b =
  if b < 0 || b >= t.nbranches then
    invalid_arg (Printf.sprintf "Branch_bitmap: unknown branch %d" b)

let add_branch t ~from =
  let col =
    match from with
    | None -> Bitvec.create ~capacity:(max 64 t.rows) ()
    | Some parent ->
        check_branch t parent;
        Bitvec.copy t.columns.(parent)
  in
  if t.nbranches = Array.length t.columns then begin
    let a = Array.make (2 * t.nbranches) (Bitvec.create ()) in
    Array.blit t.columns 0 a 0 t.nbranches;
    t.columns <- a
  end;
  t.columns.(t.nbranches) <- col;
  t.nbranches <- t.nbranches + 1;
  t.nbranches - 1

let append_row t =
  let r = t.rows in
  t.rows <- r + 1;
  r

let set t ~branch ~row =
  check_branch t branch;
  if row >= t.rows then t.rows <- row + 1;
  Bitvec.set t.columns.(branch) row

let clear t ~branch ~row =
  check_branch t branch;
  if row >= t.rows then t.rows <- row + 1;
  Bitvec.clear t.columns.(branch) row

let get t ~branch ~row =
  check_branch t branch;
  Bitvec.get t.columns.(branch) row

let snapshot t ~branch =
  check_branch t branch;
  Bitvec.copy t.columns.(branch)

let column_view t ~branch =
  check_branch t branch;
  t.columns.(branch)

let overwrite_column t ~branch col =
  check_branch t branch;
  t.columns.(branch) <- Bitvec.copy col

let row_membership t ~row =
  let acc = ref [] in
  for b = t.nbranches - 1 downto 0 do
    if Bitvec.get t.columns.(b) row then acc := b :: !acc
  done;
  !acc

let live_count t ~branch =
  check_branch t branch;
  Bitvec.pop_count t.columns.(branch)

let density t ~branch =
  if t.rows = 0 then 0.0
  else float_of_int (live_count t ~branch) /. float_of_int t.rows

let memory_bytes t =
  let acc = ref 0 in
  for b = 0 to t.nbranches - 1 do
    acc := !acc + ((Bitvec.length t.columns.(b) + 7) / 8)
  done;
  !acc

let serialize buf t =
  Decibel_util.Binio.write_varint buf t.nbranches;
  Decibel_util.Binio.write_varint buf t.rows;
  for b = 0 to t.nbranches - 1 do
    Bitvec.serialize buf t.columns.(b)
  done

let deserialize s pos =
  let nbranches = Decibel_util.Binio.read_varint s pos in
  let rows = Decibel_util.Binio.read_varint s pos in
  let t = create () in
  t.rows <- rows;
  for _ = 1 to nbranches do
    let col = Bitvec.deserialize s pos in
    let b = add_branch t ~from:None in
    t.columns.(b) <- col
  done;
  t.rows <- rows;
  t
