(** Compressed commit histories for bitmap-backed engines.

    Tuple-first and hybrid keep historical commit data out of the live
    bitmap index: each commit stores the XOR delta between the branch's
    bitmap now and at the previous commit, run-length-encoded, appended
    to a per-branch (or per branch-and-segment, in hybrid) history file
    (paper §3.2 “Commit”).  Checkout replays deltas up to the commit of
    interest.  To bound replay length, every [layer_stride] commits a
    second-layer composite delta (XOR across the whole stride) is also
    written, so a checkout applies at most
    [n / stride + stride] deltas — the paper's two-layer scheme.

    Compressed entries are cached in memory; the backing file is the
    durable copy and the thing whose size Table 2 reports. *)

type t

val layer_stride : int
(** Commits per composite delta (16). *)

val create : path:string -> t
(** New empty history backed by the given file (truncated). *)

val open_existing : path:string -> t
(** Reload a persisted history. *)

val commit : t -> Decibel_util.Bitvec.t -> int
(** Record the branch bitmap at a commit; returns the commit's index in
    this history (0-based). *)

val checkout : t -> int -> Decibel_util.Bitvec.t
(** Reconstruct the bitmap as of the given commit index.  Raises
    [Invalid_argument] if out of range. *)

val count : t -> int
val disk_bytes : t -> int
(** Size of the persisted history file. *)

val path : t -> string
(** The backing file, for introspection reports. *)

val replay_length : t -> int -> int
(** Number of delta applications a checkout of the given index needs
    (for the layering ablation). *)

val max_replay_length : t -> int
(** Worst-case {!replay_length} over every commit in this history
    ([0] when empty) — the chain-depth bound the two-layer scheme is
    meant to keep at [n / stride + stride]. *)

val close : t -> unit
