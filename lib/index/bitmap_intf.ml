(** Common interface of the two bitmap-index layouts.

    The tuple-first scheme's bitmap index can be laid out
    tuple-oriented (one bitmap row per tuple, branches contiguous) or
    branch-oriented (one bitmap per branch, rows contiguous) — paper
    §3.1.  Engines are functorized over this signature so both layouts
    run through identical versioning logic and can be benchmarked
    against each other (the paper's evaluation uses branch-oriented,
    §5; the ablation bench measures both). *)

module type S = sig
  type t

  val layout : string
  (** ["branch-oriented"] or ["tuple-oriented"], for reports. *)

  val create : unit -> t

  val add_branch : t -> from:int option -> int
  (** Register the next branch id (dense, starting at 0).  With
      [from = Some parent], the new branch's column starts as a copy of
      the parent's — the paper's branch operation clones the parent
      bitmap (§3.2 “Branch”). Returns the new branch id. *)

  val branch_count : t -> int

  val row_count : t -> int

  val append_row : t -> int
  (** Allocate the next row (tuple slot), all bits clear; returns its
      index. *)

  val set : t -> branch:int -> row:int -> unit
  val clear : t -> branch:int -> row:int -> unit
  val get : t -> branch:int -> row:int -> bool

  val snapshot : t -> branch:int -> Decibel_util.Bitvec.t
  (** Copy of a branch's liveness column (commit snapshots, §3.2). *)

  val column_view : t -> branch:int -> Decibel_util.Bitvec.t
  (** The branch's column for read-only use.  Branch-oriented returns
      the live vector without copying (callers must not mutate);
      tuple-oriented materializes it, which is exactly the extra work
      the paper attributes to that layout on single-branch scans. *)

  val overwrite_column : t -> branch:int -> Decibel_util.Bitvec.t -> unit
  (** Replace a branch's column wholesale (merge installs, tests). *)

  val row_membership : t -> row:int -> int list
  (** Branches a row is live in.  Tuple-oriented reads one contiguous
      run of bits; branch-oriented probes every column — the layout
      trade-off for multi-branch scans (§3.1). *)

  val live_count : t -> branch:int -> int
  (** Population count of a branch's liveness column — how many rows
      the branch sees as live. *)

  val density : t -> branch:int -> float
  (** [live_count / row_count]: the fraction of allocated bitmap bits
      set for the branch ([0.] when there are no rows).  A low density
      on a long-lived index is wasted bitmap space — the quantity the
      introspection report surfaces per branch. *)

  val memory_bytes : t -> int
  (** Approximate resident size, for reports. *)

  val serialize : Buffer.t -> t -> unit
  val deserialize : string -> int ref -> t
  (** Self-delimiting persistence (engine manifests). *)
end
