open Decibel_util
module Obs = Decibel_obs.Obs

(* commit_history.* registry counters: how much compressed delta data
   commits write and how much checkout replays read back (Table 2's
   "pack file size" column, but live) *)
let c_commits = Obs.counter "commit_history.commits"
let c_checkouts = Obs.counter "commit_history.checkouts"
let c_delta_bytes = Obs.counter "commit_history.delta_bytes"
let c_rle_runs = Obs.counter "commit_history.rle_runs"
let c_deltas_replayed = Obs.counter "commit_history.deltas_replayed"

(* the RLE wire format is [varint bit-length][varint run-count][runs] *)
let rle_run_count compressed =
  if compressed = "" then 0
  else begin
    let pos = ref 0 in
    let _bits = Binio.read_varint compressed pos in
    Binio.read_varint compressed pos
  end

let layer_stride = 16

type entry = { compressed : string }

type t = {
  path : string;
  mutable units : entry array; (* delta i: commit i-1 -> i (or empty -> 0) *)
  mutable nunits : int;
  mutable composites : entry array; (* delta j: commit (j*S - 1) -> j*S+S-1 *)
  mutable ncomposites : int;
  mutable last : Bitvec.t; (* bitmap at latest commit *)
  mutable anchor : Bitvec.t; (* bitmap at last composite boundary *)
  mutable disk : int;
  oc : out_channel;
}

let push_entry arr n e =
  let arr = if n = Array.length arr then begin
      let a = Array.make (max 8 (2 * n)) { compressed = "" } in
      Array.blit arr 0 a 0 n;
      a
    end
    else arr
  in
  arr.(n) <- e;
  arr

(* File framing: [u8 kind][varint rle length][rle bytes]; kind 0 = unit
   delta, 1 = composite delta. *)
let write_record oc kind compressed =
  let buf = Buffer.create (String.length compressed + 8) in
  Binio.write_u8 buf kind;
  Binio.write_string buf compressed;
  let s = Buffer.contents buf in
  output_string oc s;
  String.length s

let make path oc =
  {
    path;
    units = Array.make 8 { compressed = "" };
    nunits = 0;
    composites = Array.make 2 { compressed = "" };
    ncomposites = 0;
    last = Bitvec.create ();
    anchor = Bitvec.create ();
    disk = 0;
    oc;
  }

let create ~path =
  let oc = open_out_bin path in
  make path oc

let commit t bitmap =
  let idx = t.nunits in
  let delta = Bitvec.xor t.last bitmap in
  let compressed = Rle.encode delta in
  t.units <- push_entry t.units t.nunits { compressed };
  t.nunits <- t.nunits + 1;
  t.disk <- t.disk + write_record t.oc 0 compressed;
  t.last <- Bitvec.copy bitmap;
  Obs.incr c_commits;
  Obs.add c_delta_bytes (String.length compressed);
  Obs.add c_rle_runs (rle_run_count compressed);
  if (idx + 1) mod layer_stride = 0 then begin
    let comp = Bitvec.xor t.anchor bitmap in
    let comp_c = Rle.encode comp in
    t.composites <- push_entry t.composites t.ncomposites { compressed = comp_c };
    t.ncomposites <- t.ncomposites + 1;
    t.disk <- t.disk + write_record t.oc 1 comp_c;
    t.anchor <- Bitvec.copy bitmap;
    Obs.add c_delta_bytes (String.length comp_c);
    Obs.add c_rle_runs (rle_run_count comp_c)
  end;
  flush t.oc;
  idx

let decode_entry e =
  let pos = ref 0 in
  Rle.decode e.compressed pos

(* Plan for reaching commit [idx]: apply composites 0..c-1 (reaching
   commit c*S - 1), then unit deltas c*S .. idx. *)
let plan _t idx =
  let c = (idx + 1) / layer_stride in
  (c, (c * layer_stride, idx))

let checkout t idx =
  if idx < 0 || idx >= t.nunits then
    invalid_arg (Printf.sprintf "Commit_history.checkout: index %d/%d" idx t.nunits);
  let ncomp, (ufrom, uto) = plan t idx in
  Obs.incr c_checkouts;
  Obs.add c_deltas_replayed (ncomp + (uto - ufrom + 1));
  let acc = ref (Bitvec.create ()) in
  for j = 0 to ncomp - 1 do
    acc := Bitvec.xor !acc (decode_entry t.composites.(j))
  done;
  for i = ufrom to uto do
    acc := Bitvec.xor !acc (decode_entry t.units.(i))
  done;
  !acc

let replay_length t idx =
  let ncomp, (ufrom, uto) = plan t idx in
  ncomp + (uto - ufrom + 1)

let count t = t.nunits
let disk_bytes t = t.disk
let path t = t.path

let max_replay_length t =
  let mx = ref 0 in
  for idx = 0 to t.nunits - 1 do
    let r = replay_length t idx in
    if r > !mx then mx := r
  done;
  !mx

let close t = close_out_noerr t.oc

let open_existing ~path =
  let data = Binio.read_file path in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  let t = make path oc in
  t.disk <- String.length data;
  let pos = ref 0 in
  while !pos < String.length data do
    let kind = Binio.read_u8 data pos in
    let compressed = Binio.read_string data pos in
    match kind with
    | 0 ->
        t.units <- push_entry t.units t.nunits { compressed };
        t.nunits <- t.nunits + 1
    | 1 ->
        t.composites <- push_entry t.composites t.ncomposites { compressed };
        t.ncomposites <- t.ncomposites + 1
    | k -> raise (Binio.Corrupt (Printf.sprintf "Commit_history: kind %d" k))
  done;
  if t.nunits > 0 then begin
    t.last <- checkout t (t.nunits - 1);
    let boundary = t.nunits / layer_stride * layer_stride in
    t.anchor <-
      (if boundary = 0 then Bitvec.create () else checkout t (boundary - 1))
  end;
  t
