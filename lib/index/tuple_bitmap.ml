(** Tuple-oriented bitmap layout: all rows in one block of memory, each
    row holding [branch_capacity] contiguous bits (paper §3.1).  Reading
    one tuple's membership across branches is a single contiguous load,
    but growing past the branch capacity rewrites the entire bitmap —
    the expansion-and-copy cost the paper describes, amortized by
    capacity doubling. *)

open Decibel_util

type t = {
  mutable bits : Bitvec.t;
  mutable branch_capacity : int;
  mutable nbranches : int;
  mutable rows : int;
}

let layout = "tuple-oriented"

let initial_capacity = 8

let create () =
  {
    bits = Bitvec.create ();
    branch_capacity = initial_capacity;
    nbranches = 0;
    rows = 0;
  }

let branch_count t = t.nbranches
let row_count t = t.rows

let check_branch t b =
  if b < 0 || b >= t.nbranches then
    invalid_arg (Printf.sprintf "Tuple_bitmap: unknown branch %d" b)

let bit_index t ~branch ~row = (row * t.branch_capacity) + branch

(* Double the per-row branch capacity, copying every row's bits into
   the wider layout. *)
let grow_capacity t =
  let old_cap = t.branch_capacity in
  let new_cap = old_cap * 2 in
  let nb = Bitvec.create ~capacity:(max 64 (t.rows * new_cap)) () in
  for row = 0 to t.rows - 1 do
    for b = 0 to t.nbranches - 1 do
      if Bitvec.get t.bits ((row * old_cap) + b) then
        Bitvec.set nb ((row * new_cap) + b)
    done
  done;
  t.bits <- nb;
  t.branch_capacity <- new_cap

let add_branch t ~from =
  if t.nbranches = t.branch_capacity then grow_capacity t;
  let b = t.nbranches in
  t.nbranches <- b + 1;
  (match from with
  | None -> ()
  | Some parent ->
      check_branch t parent;
      for row = 0 to t.rows - 1 do
        if Bitvec.get t.bits (bit_index t ~branch:parent ~row) then
          Bitvec.set t.bits (bit_index t ~branch:b ~row)
      done);
  b

let ensure_row t row = if row >= t.rows then t.rows <- row + 1

let append_row t =
  let r = t.rows in
  t.rows <- r + 1;
  r

let set t ~branch ~row =
  check_branch t branch;
  ensure_row t row;
  Bitvec.set t.bits (bit_index t ~branch ~row)

let clear t ~branch ~row =
  check_branch t branch;
  ensure_row t row;
  Bitvec.clear t.bits (bit_index t ~branch ~row)

let get t ~branch ~row =
  check_branch t branch;
  Bitvec.get t.bits (bit_index t ~branch ~row)

(* Materializing a branch column walks the entire bitmap — the layout's
   penalty for single-branch operations (§3.2 “Single-branch Scan”). *)
let snapshot t ~branch =
  check_branch t branch;
  let col = Bitvec.create ~capacity:(max 64 t.rows) () in
  for row = 0 to t.rows - 1 do
    if Bitvec.get t.bits (bit_index t ~branch ~row) then Bitvec.set col row
  done;
  if t.rows > 0 then Bitvec.assign col (t.rows - 1) (get t ~branch ~row:(t.rows - 1));
  col

let column_view = snapshot

let overwrite_column t ~branch col =
  check_branch t branch;
  for row = 0 to max t.rows (Bitvec.length col) - 1 do
    ensure_row t row;
    Bitvec.assign t.bits (bit_index t ~branch ~row) (Bitvec.get col row)
  done

let row_membership t ~row =
  let acc = ref [] in
  for b = t.nbranches - 1 downto 0 do
    if Bitvec.get t.bits (bit_index t ~branch:b ~row) then acc := b :: !acc
  done;
  !acc

(* counts bits in place — no column materialization *)
let live_count t ~branch =
  check_branch t branch;
  let acc = ref 0 in
  for row = 0 to t.rows - 1 do
    if Bitvec.get t.bits (bit_index t ~branch ~row) then Stdlib.incr acc
  done;
  !acc

let density t ~branch =
  if t.rows = 0 then 0.0
  else float_of_int (live_count t ~branch) /. float_of_int t.rows

let memory_bytes t = (Bitvec.length t.bits + 7) / 8

let serialize buf t =
  Decibel_util.Binio.write_varint buf t.branch_capacity;
  Decibel_util.Binio.write_varint buf t.nbranches;
  Decibel_util.Binio.write_varint buf t.rows;
  Bitvec.serialize buf t.bits

let deserialize s pos =
  let branch_capacity = Decibel_util.Binio.read_varint s pos in
  let nbranches = Decibel_util.Binio.read_varint s pos in
  let rows = Decibel_util.Binio.read_varint s pos in
  let bits = Bitvec.deserialize s pos in
  { bits; branch_capacity; nbranches; rows }
