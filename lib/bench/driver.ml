(** Benchmark driver: replays workloads into a database and measures
    the paper's queries (§4.2–4.3).

    Record values are derived deterministically from the key and the
    workload seed, so every scheme stores byte-identical datasets.
    Before each measured query the buffer pool is dropped, standing in
    for the paper's disk-cache flushes (§5). *)

open Decibel
open Decibel_util
open Decibel_storage
module Vg = Decibel_graph.Version_graph

type loaded = {
  db : Database.t;
  cfg : Config.t;
  workload : Workload.t;
  dir : string;
  commits : (string, Vg.version_id list) Hashtbl.t;
      (* per branch name, newest first *)
  load_seconds : float;
  merge_stats : (Types.merge_policy * float * int) list;
      (* policy, seconds, bytes of inter-branch diff handled *)
}

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

(* Deterministic record content: column j of record [key] is a hash of
   (seed, key, j); the primary key column is the key itself. *)
let tuple_of_key cfg key =
  let g =
    Prng.create (Int64.add cfg.Config.seed (Int64.of_int ((key * 2) + 1)))
  in
  Array.init cfg.Config.columns (fun j ->
      if j = 0 then Value.int key
      else Value.Int (Prng.next_int64 g))

(* Low-cardinality record content for the compression ablation (§5.5):
   real datasets have skewed, repetitive fields, unlike the incompressible
   uniform-random benchmark columns. *)
let compressible_tuple_of_key cfg key =
  Array.init cfg.Config.columns (fun j ->
      if j = 0 then Value.int key
      else Value.int (((key / 16) + j) mod 8))

(* Updates write a fresh value derived from a per-load counter so each
   update changes the record. *)
let updated_tuple cfg key salt =
  let g =
    Prng.create
      (Int64.add cfg.Config.seed (Int64.of_int ((key * 65537) + salt)))
  in
  Array.init cfg.Config.columns (fun j ->
      if j = 0 then Value.int key else Value.Int (Prng.next_int64 g))

let branch_id db name = Database.branch_named db name

let diff_bytes db a b =
  let schema = Database.schema db in
  let bytes = ref 0 in
  Database.diff db a b
    ~pos:(fun t -> bytes := !bytes + Tuple.encoded_size schema t)
    ~neg:(fun t -> bytes := !bytes + Tuple.encoded_size schema t);
  !bytes

let load ?(clustered = false) ?(durable = false) ~scheme ~dir cfg workload =
  let workload = if clustered then Workload.cluster workload else workload in
  Fsutil.mkdir_p dir;
  let db =
    Database.open_ ~durable ~scheme ~dir ~schema:(Config.schema cfg) ()
  in
  let commits : (string, Vg.version_id list) Hashtbl.t = Hashtbl.create 64 in
  let record_commit name vid =
    let prev = Option.value ~default:[] (Hashtbl.find_opt commits name) in
    Hashtbl.replace commits name (vid :: prev)
  in
  let merge_stats = ref [] in
  let salt = ref 0 in
  let t0 = now () in
  List.iter
    (fun (op : Workload.op) ->
      match op with
      | Workload.Insert { branch; key } ->
          Database.insert db (branch_id db branch) (tuple_of_key cfg key)
      | Workload.Update { branch; key } ->
          incr salt;
          Database.update db (branch_id db branch)
            (updated_tuple cfg key !salt)
      | Workload.Commit branch ->
          let vid =
            Database.commit db (branch_id db branch) ~message:"bench"
          in
          record_commit branch vid
      | Workload.Create_branch { name; from_branch; commits_back } ->
          let versions =
            Option.value ~default:[] (Hashtbl.find_opt commits from_branch)
          in
          let from =
            match List.nth_opt versions commits_back with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf "workload: %s has no commit %d back"
                     from_branch commits_back)
          in
          let _ = Database.create_branch db ~name ~from in
          ()
      | Workload.Merge { into; from; policy } ->
          let bi = branch_id db into and bf = branch_id db from in
          let bytes = diff_bytes db bi bf in
          let secs, r =
            time (fun () ->
                Database.merge db ~into:bi ~from:bf ~policy ~message:"merge")
          in
          merge_stats := (policy, secs, bytes) :: !merge_stats;
          record_commit into r.Types.merge_version
      | Workload.Retire branch ->
          Vg.retire (Database.graph db) (branch_id db branch))
    workload.Workload.ops;
  Database.flush db;
  let load_seconds = now () -. t0 in
  { db; cfg; workload; dir; commits; load_seconds; merge_stats = !merge_stats }

let close l =
  Database.close l.db;
  Fsutil.rm_rf l.dir

(* ------------------------------------------------------------------ *)
(* measured queries *)

let measure ?(repeat = 3) l f =
  (* collect load garbage and run once unmeasured, so GC pauses from
     setup work do not pollute the samples *)
  Gc.full_major ();
  Database.drop_caches l.db;
  ignore (f ());
  List.init repeat (fun _ ->
      Database.drop_caches l.db;
      fst (time f))

(* a very non-selective predicate, as the paper uses for Q4 (§5.2):
   true for all but ~1/16 of records *)
let nonselective_pred l =
  let schema = Database.schema l.db in
  let idx = Schema.column_index schema "c1" in
  fun (t : Tuple.t) ->
    match t.(idx) with Value.Int x -> Int64.rem x 16L <> 0L | Value.Str _ -> true

let q1 ?repeat l ~branch =
  measure ?repeat l (fun () ->
      ignore (Query.q1_scan l.db (branch_id l.db branch)))

let q2 ?repeat l ~b1 ~b2 =
  measure ?repeat l (fun () ->
      ignore (Query.q2_pos_diff l.db (branch_id l.db b1) (branch_id l.db b2)))

let q3 ?repeat l ~b1 ~b2 =
  let pred = nonselective_pred l in
  measure ?repeat l (fun () ->
      ignore (Query.q3_join ~pred l.db (branch_id l.db b1) (branch_id l.db b2)))

let q4 ?repeat l =
  let pred = nonselective_pred l in
  measure ?repeat l (fun () -> ignore (Query.q4_heads ~pred l.db))

let dataset_bytes l = Database.dataset_bytes l.db
let commit_meta_bytes l = Database.commit_meta_bytes l.db

(* table-wise update (fig. 11 / table 4): rewrite every record of a
   branch, bumping one non-key column *)
let table_wise_update l ~branch =
  let schema = Database.schema l.db in
  let idx = Schema.column_index schema "c1" in
  ignore
    (Database.update_all l.db (branch_id l.db branch) (fun t ->
         let t' = Array.copy t in
         (t'.(idx) <-
            (match t.(idx) with
            | Value.Int x -> Value.Int (Int64.add x 1L)
            | Value.Str s -> Value.Str (s ^ "!")));
         t'))

(* random commit checkouts (table 2): average time to reconstruct and
   scan-count a historical commit *)
let checkout_samples l ~count rng =
  let all_versions =
    Hashtbl.fold (fun _ vs acc -> vs @ acc) l.commits []
  in
  let arr = Array.of_list all_versions in
  if Array.length arr = 0 then []
  else
    List.init count (fun _ ->
        let v = arr.(Prng.int rng (Array.length arr)) in
        Database.drop_caches l.db;
        fst (time (fun () -> ignore (Query.q1_scan_version l.db v))))

(* average commit creation time: measured on fresh data ops applied to
   the given branch *)
let commit_samples l ~branch ~count rng =
  let b = branch_id l.db branch in
  let cfg = l.cfg in
  List.init count (fun i ->
      (* a couple of fresh inserts so the commit has a delta *)
      let base = 10_000_000 + (i * 4) + (Prng.int rng 2) in
      for k = 0 to 1 do
        Database.insert l.db b (tuple_of_key cfg (base + k))
      done;
      fst (time (fun () -> ignore (Database.commit l.db b ~message:"tick"))))

(* ------------------------------------------------------------------ *)
(* result fingerprints (scalability bench): order-sensitive FNV-1a-64
   over the encoded result stream, so "parallel output is identical to
   serial, in the same order" collapses to one integer comparison *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_add h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let scan_fingerprint l ~branch =
  let schema = Database.schema l.db in
  let h = ref fnv_offset and n = ref 0 in
  Database.scan l.db (branch_id l.db branch) (fun t ->
      incr n;
      h := fnv_add !h (Tuple.encode schema t));
  (!h, !n)

let multi_scan_fingerprint l =
  let schema = Database.schema l.db in
  let h = ref fnv_offset and n = ref 0 in
  Database.multi_scan l.db (Database.heads l.db)
    (fun (a : Types.annotated) ->
      incr n;
      h := fnv_add !h (Tuple.encode schema a.tuple);
      List.iter (fun b -> h := fnv_add !h (string_of_int b)) a.in_branches);
  (!h, !n)

let diff_fingerprint l ~b1 ~b2 =
  let schema = Database.schema l.db in
  let h = ref fnv_offset and n = ref 0 in
  Database.diff l.db (branch_id l.db b1) (branch_id l.db b2)
    ~pos:(fun t ->
      incr n;
      h := fnv_add (fnv_add !h "+") (Tuple.encode schema t))
    ~neg:(fun t ->
      incr n;
      h := fnv_add (fnv_add !h "-") (Tuple.encode schema t));
  (!h, !n)
