(** Plain-text tables and timing statistics for benchmark output. *)

let mean samples =
  match samples with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let std samples =
  match samples with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean samples in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples
        /. float_of_int (List.length samples - 1)
      in
      sqrt var

(* Nearest-rank percentile: the smallest sample with at least
   [q * n] samples at or below it. *)
let percentile samples q =
  match List.sort compare samples with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let ms x = x *. 1000.0

let fmt_ms samples =
  let m = ms (mean samples) in
  if m < 0.1 then Printf.sprintf "%.0f us" (m *. 1000.)
  else Printf.sprintf "%.1f ms" m

let fmt_ms_pm samples =
  let m = ms (mean samples) and s = ms (std samples) in
  if m < 0.1 then
    Printf.sprintf "%.0f +- %.0f us" (m *. 1000.) (s *. 1000.)
  else Printf.sprintf "%.1f +- %.1f ms" m s

let fmt_bytes b =
  if b >= 1 lsl 30 then Printf.sprintf "%.2f GB" (float_of_int b /. 1073741824.)
  else if b >= 1 lsl 20 then
    Printf.sprintf "%.2f MB" (float_of_int b /. 1048576.)
  else if b >= 1 lsl 10 then Printf.sprintf "%.1f KB" (float_of_int b /. 1024.)
  else Printf.sprintf "%d B" b

let fmt_mbps ~bytes ~seconds =
  if seconds <= 0.0 then "-"
  else Printf.sprintf "%.1f MB/s" (float_of_int bytes /. 1048576. /. seconds)

(* ------------------------------------------------------------------ *)
(* minimal JSON emitter, for machine-readable benchmark reports *)

type json =
  | J_int of int
  | J_float of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list
  | J_raw of string (* pre-rendered JSON, e.g. a storage report *)

let rec json_to_buf buf = function
  | J_int n -> Buffer.add_string buf (string_of_int n)
  | J_raw s -> Buffer.add_string buf s
  | J_float f ->
      Buffer.add_string buf
        (if Float.is_finite f then Printf.sprintf "%.6g" f else "0")
  | J_str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (Decibel_obs.Obs.json_escape s);
      Buffer.add_char buf '"'
  | J_list xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf x)
        xs;
      Buffer.add_char buf ']'
  | J_obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buf buf (J_str k);
          Buffer.add_char buf ':';
          json_to_buf buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  json_to_buf buf j;
  Buffer.contents buf

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

(* aligned table printer *)
let table ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.length headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          cell ^ String.make (w - String.length cell) ' ')
        row
    in
    Printf.printf "  %s\n" (String.concat "  " cells)
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout
